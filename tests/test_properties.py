"""Property-based tests (hypothesis) on the core invariants.

Safety first: whatever the adversary, the fault schedule, or the port
numbering, DAC/DBAC must never violate validity, and if they terminate
they must agree to epsilon. Plus structural invariants of the
dynaDegree checker, the port layer, and the engine's determinism.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.constrained import RotatingQuorumAdversary
from repro.adversary.random_adv import RandomLinkAdversary
from repro.core.dac import DACProcess
from repro.core.dbac import DBACProcess
from repro.faults.base import FaultPlan
from repro.faults.byzantine import RandomByzantine
from repro.faults.crash import staggered_crashes
from repro.net.dynadegree import check_dynadegree, max_degree_for_window
from repro.net.dynamic import DynamicGraph
from repro.net.generators import random_edges
from repro.net.graph import DirectedGraph
from repro.net.ports import random_ports
from repro.sim.rng import child_rng
from repro.sim.runner import run_consensus
from repro.workloads import dbac_degree

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_trace(n: int, rounds: int, p: float, seed: int) -> DynamicGraph:
    rng = random.Random(seed)
    dyn = DynamicGraph(n)
    for _ in range(rounds):
        dyn.record(DirectedGraph(n, random_edges(n, p, rng)))
    return dyn


class TestDynaDegreeProperties:
    @RELAXED
    @given(
        n=st.integers(3, 8),
        rounds=st.integers(3, 12),
        p=st.floats(0.1, 0.9),
        seed=st.integers(0, 10_000),
        window=st.integers(1, 4),
    )
    def test_max_degree_is_tight(self, n, rounds, p, seed, window):
        trace = random_trace(n, rounds, p, seed)
        best = max_degree_for_window(trace, window)
        if best >= 1:
            assert check_dynadegree(trace, window, best).holds
        if best < n - 1:
            assert not check_dynadegree(trace, window, best + 1).holds

    @RELAXED
    @given(
        n=st.integers(3, 7),
        rounds=st.integers(4, 10),
        p=st.floats(0.2, 0.8),
        seed=st.integers(0, 10_000),
    )
    def test_monotone_in_window(self, n, rounds, p, seed):
        trace = random_trace(n, rounds, p, seed)
        degrees = [max_degree_for_window(trace, w) for w in range(1, rounds + 1)]
        assert degrees == sorted(degrees)


class TestPortProperties:
    @RELAXED
    @given(n=st.integers(1, 20), seed=st.integers(0, 10_000))
    def test_bijection_round_trip(self, n, seed):
        ports = random_ports(n, random.Random(seed))
        for receiver in range(n):
            assert {ports.port_of(receiver, s) for s in range(n)} == set(range(n))
            for sender in range(n):
                assert ports.sender_of(receiver, ports.port_of(receiver, sender)) == sender


class TestDACSafetyProperties:
    @RELAXED
    @given(
        n=st.integers(5, 11),
        seed=st.integers(0, 10_000),
        p=st.floats(0.05, 0.9),
    )
    def test_safety_under_arbitrary_random_adversary(self, n, seed, p):
        # No stability promise at all: termination may fail, but
        # validity must hold and, if all output, so must agreement.
        ports = random_ports(n, child_rng(seed, "ports"))
        rng = child_rng(seed, "inputs")
        inputs = [rng.random() for _ in range(n)]
        procs = {
            v: DACProcess(n, 0, inputs[v], ports.self_port(v), epsilon=1e-2)
            for v in range(n)
        }
        report = run_consensus(
            procs,
            RandomLinkAdversary(p),
            ports,
            epsilon=1e-2,
            max_rounds=120,
            seed=seed,
        )
        assert report.validity
        if report.terminated:
            assert report.epsilon_agreement

    @RELAXED
    @given(n=st.integers(5, 11), seed=st.integers(0, 10_000))
    def test_liveness_at_the_boundary(self, n, seed):
        # With the promise met and f = (n-1)/2 crashes, everything holds.
        if n % 2 == 0:
            n += 1
        f = (n - 1) // 2
        ports = random_ports(n, child_rng(seed, "ports"))
        rng = child_rng(seed, "inputs")
        inputs = [rng.random() for _ in range(n)]
        plan = FaultPlan(
            n, crashes=staggered_crashes(range(n - f, n), first_round=1)
        )
        procs = {
            v: DACProcess(n, f, inputs[v], ports.self_port(v), epsilon=1e-2)
            for v in plan.non_byzantine
        }
        report = run_consensus(
            procs,
            RotatingQuorumAdversary(n // 2, selector="random"),
            ports,
            epsilon=1e-2,
            f=f,
            fault_plan=plan,
            max_rounds=300,
            seed=seed,
        )
        assert report.correct, report.summary()
        for rate in report.convergence_rates:
            assert rate <= 0.5 + 1e-9


class TestDBACSafetyProperties:
    @RELAXED
    @given(seed=st.integers(0, 10_000))
    def test_validity_under_random_byzantine(self, seed):
        n, f = 6, 1
        ports = random_ports(n, child_rng(seed, "ports"))
        rng = child_rng(seed, "inputs")
        inputs = [rng.random() for _ in range(n)]
        plan = FaultPlan(n, byzantine={5: RandomByzantine(low=-10.0, high=10.0)})
        procs = {
            v: DBACProcess(n, f, inputs[v], ports.self_port(v), end_phase=6)
            for v in plan.non_byzantine
        }
        report = run_consensus(
            procs,
            RotatingQuorumAdversary(dbac_degree(n, f), selector="random"),
            ports,
            epsilon=1e-2,
            f=f,
            fault_plan=plan,
            stop_mode="output",
            max_rounds=250,
            seed=seed,
        )
        assert report.terminated
        honest = [inputs[v] for v in plan.non_byzantine]
        lo, hi = min(honest), max(honest)
        for value in report.outputs.values():
            assert lo - 1e-9 <= value <= hi + 1e-9
        bound = 1.0 - 2.0**-n
        for rate in report.convergence_rates:
            assert rate <= bound + 1e-9


class TestDeterminismProperties:
    @RELAXED
    @given(seed=st.integers(0, 10_000), p=st.floats(0.1, 0.9))
    def test_identical_seeds_identical_traces(self, seed, p):
        def run_once():
            n = 6
            ports = random_ports(n, child_rng(seed, "ports"))
            rng = child_rng(seed, "inputs")
            inputs = [rng.random() for _ in range(n)]
            procs = {
                v: DACProcess(n, 0, inputs[v], ports.self_port(v), epsilon=1e-2)
                for v in range(n)
            }
            report = run_consensus(
                procs,
                RandomLinkAdversary(p),
                ports,
                epsilon=1e-2,
                max_rounds=60,
                seed=seed,
            )
            trace = report.trace
            return (
                report.rounds,
                tuple(report.outputs.items()),
                tuple(tuple(sorted(s.graph.edges)) for s in trace.rounds),
            )

        assert run_once() == run_once()
