"""Unit tests for the enforcing worst-case adversaries.

The central contract: whatever these adversaries do, the recorded trace
must satisfy the promised (T, D)-dynaDegree -- checked here with the
independent checker, including under crashes.
"""

import pytest

from repro.adversary.constrained import (
    LastMinuteQuorumAdversary,
    PhaseSkewAdversary,
    RotatingQuorumAdversary,
)
from repro.core.dac import DACProcess
from repro.faults.base import FaultPlan
from repro.faults.crash import staggered_crashes
from repro.net.dynadegree import check_dynadegree
from repro.net.ports import identity_ports
from repro.sim.engine import Engine

from tests.helpers import spread_inputs


def run_with(adversary, n, f=0, fault_plan=None, rounds=30):
    ports = identity_ports(n)
    plan = fault_plan or FaultPlan.fault_free_plan(n)
    inputs = spread_inputs(n)
    procs = {
        v: DACProcess(n, f, inputs[v], ports.self_port(v), epsilon=1e-4)
        for v in plan.non_byzantine
    }
    engine = Engine(procs, adversary, ports, fault_plan=plan, f=f)
    engine.run(rounds)
    assert engine.trace is not None
    return engine


class TestValidation:
    def test_bad_degree_rejected(self):
        with pytest.raises(ValueError, match="D must be >= 1"):
            RotatingQuorumAdversary(0)

    def test_bad_selector_rejected(self):
        with pytest.raises(ValueError, match="selector"):
            RotatingQuorumAdversary(2, selector="weird")

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="T must be >= 1"):
            LastMinuteQuorumAdversary(0, 2)


class TestRotatingQuorum:
    def test_promise_holds_fault_free(self):
        n = 7
        engine = run_with(RotatingQuorumAdversary(3), n)
        verdict = check_dynadegree(engine.trace.dynamic_graph(), 1, 3)
        assert verdict.holds

    def test_exactly_degree_links_per_node(self):
        n = 7
        engine = run_with(RotatingQuorumAdversary(3), n)
        for snap in engine.trace.rounds:
            for v in range(n):
                assert snap.graph.in_degree(v) == 3

    def test_neighborhood_rotates(self):
        n = 7
        engine = run_with(RotatingQuorumAdversary(3), n, rounds=4)
        hoods = [engine.trace.at(t).in_neighbors(0) for t in range(4)]
        assert len(set(hoods)) > 1

    def test_promise_holds_with_crashes_counting_live_senders(self):
        n = 9
        f = 4
        plan = FaultPlan(n, crashes=staggered_crashes(range(5, 9), first_round=2))
        engine = run_with(RotatingQuorumAdversary(4), n, f=f, fault_plan=plan, rounds=25)
        trace = engine.trace
        verdict = check_dynadegree(
            trace.dynamic_graph(),
            1,
            4,
            fault_free=plan.fault_free,
            senders_at=lambda t: trace.rounds[t].live_senders,
        )
        assert verdict.holds

    def test_all_selectors_keep_promise(self):
        n = 8
        for selector in ("rotate", "nearest", "random"):
            engine = run_with(RotatingQuorumAdversary(4, selector=selector), n)
            verdict = check_dynadegree(engine.trace.dynamic_graph(), 1, 4)
            assert verdict.holds, selector


class TestLastMinuteQuorum:
    def test_silent_until_window_end(self):
        n = 6
        engine = run_with(LastMinuteQuorumAdversary(3, 3), n, rounds=9)
        sizes = engine.trace.dynamic_graph().edges_per_round()
        assert sizes[0] == 0 and sizes[1] == 0 and sizes[2] > 0
        assert sizes[3] == 0 and sizes[5] > 0

    def test_promise_holds_on_sliding_windows(self):
        n = 6
        engine = run_with(LastMinuteQuorumAdversary(3, 3), n, rounds=20)
        verdict = check_dynadegree(engine.trace.dynamic_graph(), 3, 3)
        assert verdict.holds

    def test_promise_tuple(self):
        assert LastMinuteQuorumAdversary(4, 2).promised_dynadegree() == (4, 2)
        assert RotatingQuorumAdversary(2).promised_dynadegree() == (1, 2)

    def test_window_one_equals_every_round(self):
        n = 5
        engine = run_with(LastMinuteQuorumAdversary(1, 2), n, rounds=6)
        assert all(count > 0 for count in engine.trace.dynamic_graph().edges_per_round())


class TestPhaseSkew:
    def test_promise_holds(self):
        n = 9
        adv = PhaseSkewAdversary(4, slow={6, 7, 8}, window=3)
        engine = run_with(adv, n, rounds=18)
        verdict = check_dynadegree(engine.trace.dynamic_graph(), 3, 4)
        assert verdict.holds

    def test_fast_nodes_fed_every_round(self):
        n = 9
        adv = PhaseSkewAdversary(4, slow={6, 7, 8}, window=3)
        engine = run_with(adv, n, rounds=6)
        for snap in engine.trace.rounds:
            for v in range(6):
                assert snap.graph.in_degree(v) == 4

    def test_slow_nodes_fed_once_per_window(self):
        n = 9
        adv = PhaseSkewAdversary(4, slow={6, 7, 8}, window=3)
        engine = run_with(adv, n, rounds=9)
        for t, snap in enumerate(engine.trace.rounds):
            degree = snap.graph.in_degree(7)
            if (t + 1) % 3 == 0:
                assert degree == 4
            else:
                assert degree == 0

    def test_needs_enough_fast_nodes(self):
        adv = PhaseSkewAdversary(4, slow={2, 3, 4, 5, 6, 7, 8}, window=2)
        with pytest.raises(ValueError, match="fast nodes"):
            run_with(adv, 9, rounds=1)

    def test_validation(self):
        with pytest.raises(ValueError, match="D must be >= 1"):
            PhaseSkewAdversary(0, slow=set())
        with pytest.raises(ValueError, match="T must be >= 1"):
            PhaseSkewAdversary(2, slow=set(), window=0)


class TestSelectorCaching:
    """The cached round-level selection must match the historical
    per-receiver specification exactly (the engine fast path and the
    batch engine both depend on choices being schedule-stable)."""

    @staticmethod
    def reference_rotate(n, live, receiver, salt, degree):
        # The original per-receiver implementation: keyed sort over the
        # sorted live list, receiver excluded.
        candidates = [u for u in sorted(live) if u != receiver]
        candidates.sort(key=lambda u: (u - receiver - 1 - salt) % n)
        return candidates[:degree]

    def test_rotate_picks_match_the_specified_sort(self):
        from repro.adversary.constrained import rotate_picks

        for n, degree in [(5, 2), (9, 4), (12, 5)]:
            for live in (tuple(range(n)), tuple(range(0, n, 2)), (0, 1, n - 1)):
                for salt in range(2 * n + 3):
                    picks = rotate_picks(n, live, salt, degree)
                    for receiver in range(n):
                        assert picks[receiver] == self.reference_rotate(
                            n, live, receiver, salt, degree
                        ), (n, live, salt, receiver)

    def test_cached_choices_track_live_set_changes(self):
        # Across a crashing execution, every round's graph must equal a
        # freshly computed reference graph (the cache may never serve a
        # stale live set or salt).
        n, f = 9, 4
        plan = FaultPlan(
            n, crashes=staggered_crashes(range(n - f, n), first_round=1, spacing=2)
        )
        cached_engine = run_with(
            LastMinuteQuorumAdversary(2, n // 2), n, f=f,
            fault_plan=plan, rounds=24,
        )
        from repro.adversary.constrained import rotate_picks

        for t, snap in enumerate(cached_engine.trace.rounds):
            if (t + 1) % 2 != 0:
                assert not snap.graph.edges
                continue
            live = tuple(sorted(plan.live_senders(t)))
            expected = set()
            for v, senders in enumerate(
                rotate_picks(n, live, t // 2, n // 2)
            ):
                expected.update((u, v) for u in senders)
            assert snap.graph.edges == frozenset(expected), f"round {t}"

    def test_graph_cache_replays_identical_graphs(self):
        # Fault-free rotate choices cycle with period n: the cached
        # graphs must be reused (identity), not merely equal.
        n = 6
        engine = run_with(RotatingQuorumAdversary(3), n, rounds=2 * n)
        rounds = engine.trace.rounds
        for t in range(n):
            assert rounds[t].graph is rounds[t + n].graph
            assert rounds[t].graph.edges == rounds[t + n].graph.edges

    def test_random_selector_never_cached(self):
        # The RNG stream makes random choices round-dependent; caching
        # them would freeze the schedule.
        n = 7
        engine = run_with(RotatingQuorumAdversary(3, selector="random"), n, rounds=10)
        graphs = {snap.graph.edges for snap in engine.trace.rounds}
        assert len(graphs) > 1
