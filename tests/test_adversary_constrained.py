"""Unit tests for the enforcing worst-case adversaries.

The central contract: whatever these adversaries do, the recorded trace
must satisfy the promised (T, D)-dynaDegree -- checked here with the
independent checker, including under crashes.
"""

import pytest

from repro.adversary.constrained import (
    LastMinuteQuorumAdversary,
    PhaseSkewAdversary,
    RotatingQuorumAdversary,
)
from repro.core.dac import DACProcess
from repro.faults.base import FaultPlan
from repro.faults.crash import staggered_crashes
from repro.net.dynadegree import check_dynadegree
from repro.net.ports import identity_ports
from repro.sim.engine import Engine

from tests.helpers import spread_inputs


def run_with(adversary, n, f=0, fault_plan=None, rounds=30):
    ports = identity_ports(n)
    plan = fault_plan or FaultPlan.fault_free_plan(n)
    inputs = spread_inputs(n)
    procs = {
        v: DACProcess(n, f, inputs[v], ports.self_port(v), epsilon=1e-4)
        for v in plan.non_byzantine
    }
    engine = Engine(procs, adversary, ports, fault_plan=plan, f=f)
    engine.run(rounds)
    assert engine.trace is not None
    return engine


class TestValidation:
    def test_bad_degree_rejected(self):
        with pytest.raises(ValueError, match="D must be >= 1"):
            RotatingQuorumAdversary(0)

    def test_bad_selector_rejected(self):
        with pytest.raises(ValueError, match="selector"):
            RotatingQuorumAdversary(2, selector="weird")

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="T must be >= 1"):
            LastMinuteQuorumAdversary(0, 2)


class TestRotatingQuorum:
    def test_promise_holds_fault_free(self):
        n = 7
        engine = run_with(RotatingQuorumAdversary(3), n)
        verdict = check_dynadegree(engine.trace.dynamic_graph(), 1, 3)
        assert verdict.holds

    def test_exactly_degree_links_per_node(self):
        n = 7
        engine = run_with(RotatingQuorumAdversary(3), n)
        for snap in engine.trace.rounds:
            for v in range(n):
                assert snap.graph.in_degree(v) == 3

    def test_neighborhood_rotates(self):
        n = 7
        engine = run_with(RotatingQuorumAdversary(3), n, rounds=4)
        hoods = [engine.trace.at(t).in_neighbors(0) for t in range(4)]
        assert len(set(hoods)) > 1

    def test_promise_holds_with_crashes_counting_live_senders(self):
        n = 9
        f = 4
        plan = FaultPlan(n, crashes=staggered_crashes(range(5, 9), first_round=2))
        engine = run_with(RotatingQuorumAdversary(4), n, f=f, fault_plan=plan, rounds=25)
        trace = engine.trace
        verdict = check_dynadegree(
            trace.dynamic_graph(),
            1,
            4,
            fault_free=plan.fault_free,
            senders_at=lambda t: trace.rounds[t].live_senders,
        )
        assert verdict.holds

    def test_all_selectors_keep_promise(self):
        n = 8
        for selector in ("rotate", "nearest", "random"):
            engine = run_with(RotatingQuorumAdversary(4, selector=selector), n)
            verdict = check_dynadegree(engine.trace.dynamic_graph(), 1, 4)
            assert verdict.holds, selector


class TestLastMinuteQuorum:
    def test_silent_until_window_end(self):
        n = 6
        engine = run_with(LastMinuteQuorumAdversary(3, 3), n, rounds=9)
        sizes = engine.trace.dynamic_graph().edges_per_round()
        assert sizes[0] == 0 and sizes[1] == 0 and sizes[2] > 0
        assert sizes[3] == 0 and sizes[5] > 0

    def test_promise_holds_on_sliding_windows(self):
        n = 6
        engine = run_with(LastMinuteQuorumAdversary(3, 3), n, rounds=20)
        verdict = check_dynadegree(engine.trace.dynamic_graph(), 3, 3)
        assert verdict.holds

    def test_promise_tuple(self):
        assert LastMinuteQuorumAdversary(4, 2).promised_dynadegree() == (4, 2)
        assert RotatingQuorumAdversary(2).promised_dynadegree() == (1, 2)

    def test_window_one_equals_every_round(self):
        n = 5
        engine = run_with(LastMinuteQuorumAdversary(1, 2), n, rounds=6)
        assert all(count > 0 for count in engine.trace.dynamic_graph().edges_per_round())


class TestPhaseSkew:
    def test_promise_holds(self):
        n = 9
        adv = PhaseSkewAdversary(4, slow={6, 7, 8}, window=3)
        engine = run_with(adv, n, rounds=18)
        verdict = check_dynadegree(engine.trace.dynamic_graph(), 3, 4)
        assert verdict.holds

    def test_fast_nodes_fed_every_round(self):
        n = 9
        adv = PhaseSkewAdversary(4, slow={6, 7, 8}, window=3)
        engine = run_with(adv, n, rounds=6)
        for snap in engine.trace.rounds:
            for v in range(6):
                assert snap.graph.in_degree(v) == 4

    def test_slow_nodes_fed_once_per_window(self):
        n = 9
        adv = PhaseSkewAdversary(4, slow={6, 7, 8}, window=3)
        engine = run_with(adv, n, rounds=9)
        for t, snap in enumerate(engine.trace.rounds):
            degree = snap.graph.in_degree(7)
            if (t + 1) % 3 == 0:
                assert degree == 4
            else:
                assert degree == 0

    def test_needs_enough_fast_nodes(self):
        adv = PhaseSkewAdversary(4, slow={2, 3, 4, 5, 6, 7, 8}, window=2)
        with pytest.raises(ValueError, match="fast nodes"):
            run_with(adv, 9, rounds=1)

    def test_validation(self):
        with pytest.raises(ValueError, match="D must be >= 1"):
            PhaseSkewAdversary(0, slow=set())
        with pytest.raises(ValueError, match="T must be >= 1"):
            PhaseSkewAdversary(2, slow=set(), window=0)


class TestSelectorCaching:
    """The cached round-level selection must match the historical
    per-receiver specification exactly (the engine fast path and the
    batch engine both depend on choices being schedule-stable)."""

    @staticmethod
    def reference_rotate(n, live, receiver, salt, degree):
        # The original per-receiver implementation: keyed sort over the
        # sorted live list, receiver excluded.
        candidates = [u for u in sorted(live) if u != receiver]
        candidates.sort(key=lambda u: (u - receiver - 1 - salt) % n)
        return candidates[:degree]

    def test_rotate_picks_match_the_specified_sort(self):
        from repro.adversary.constrained import rotate_picks

        for n, degree in [(5, 2), (9, 4), (12, 5)]:
            for live in (tuple(range(n)), tuple(range(0, n, 2)), (0, 1, n - 1)):
                for salt in range(2 * n + 3):
                    picks = rotate_picks(n, live, salt, degree)
                    for receiver in range(n):
                        assert picks[receiver] == self.reference_rotate(
                            n, live, receiver, salt, degree
                        ), (n, live, salt, receiver)

    def test_cached_choices_track_live_set_changes(self):
        # Across a crashing execution, every round's graph must equal a
        # freshly computed reference graph (the cache may never serve a
        # stale live set or salt).
        n, f = 9, 4
        plan = FaultPlan(
            n, crashes=staggered_crashes(range(n - f, n), first_round=1, spacing=2)
        )
        cached_engine = run_with(
            LastMinuteQuorumAdversary(2, n // 2), n, f=f,
            fault_plan=plan, rounds=24,
        )
        from repro.adversary.constrained import rotate_picks

        for t, snap in enumerate(cached_engine.trace.rounds):
            if (t + 1) % 2 != 0:
                assert not snap.graph.edges
                continue
            live = tuple(sorted(plan.live_senders(t)))
            expected = set()
            for v, senders in enumerate(
                rotate_picks(n, live, t // 2, n // 2)
            ):
                expected.update((u, v) for u in senders)
            assert snap.graph.edges == frozenset(expected), f"round {t}"

    def test_graph_cache_replays_identical_graphs(self):
        # Fault-free rotate choices cycle with period n: the cached
        # graphs must be reused (identity), not merely equal.
        n = 6
        engine = run_with(RotatingQuorumAdversary(3), n, rounds=2 * n)
        rounds = engine.trace.rounds
        for t in range(n):
            assert rounds[t].graph is rounds[t + n].graph
            assert rounds[t].graph.edges == rounds[t + n].graph.edges

    def test_random_selector_never_cached(self):
        # The RNG stream makes random choices round-dependent; caching
        # them would freeze the schedule.
        n = 7
        engine = run_with(RotatingQuorumAdversary(3, selector="random"), n, rounds=10)
        graphs = {snap.graph.edges for snap in engine.trace.rounds}
        assert len(graphs) > 1


class TestNearestSelectorSpec:
    """The two-pointer nearest selection must match the specified
    per-receiver stable sort exactly -- including distance ties (equal
    and symmetric values), Byzantine-first truncation, and crashed
    senders -- because batch/serial bit-identity rides on it."""

    class _StubView:
        def __init__(self, n, values, byzantine=(), live=None):
            self.n = n
            self._values = values  # node -> float | None
            self._byz = frozenset(byzantine)
            self._live = tuple(sorted(live if live is not None else range(n)))
            stub = self

            class _Plan:
                def is_byzantine(self, node):
                    return node in stub._byz

            self.fault_plan = _Plan()

        def live_senders_sorted(self):
            return self._live

        def value(self, node):
            return self._values.get(node)

    @staticmethod
    def reference_nearest(view, degree):
        # The specified selection: stable sort of the ascending live
        # list by (byzantine-first, |value - mine|), per receiver.
        picks = []
        for receiver in range(view.n):
            my_value = view.value(receiver)

            def hostility(u):
                if view.fault_plan.is_byzantine(u):
                    return (0, 0.0)
                value = view.value(u)
                if my_value is None or value is None:
                    return (1, 0.0)
                return (1, abs(value - my_value))

            live = [u for u in view.live_senders_sorted() if u != receiver]
            live.sort(key=hostility)
            picks.append(live[:degree])
        return picks

    def _check(self, view, degree):
        from repro.adversary.constrained import _QuorumSelector

        selector = _QuorumSelector(degree, "nearest")
        got = selector.picks_for_round(0, view, None)
        assert got == self.reference_nearest(view, degree)

    def test_random_value_patterns(self):
        import random

        rng = random.Random(7)
        for trial in range(40):
            n = rng.randrange(3, 12)
            # Coarse quantization forces frequent exact ties.
            values = {v: rng.randrange(4) / 4.0 for v in range(n)}
            byz = set(rng.sample(range(n), rng.randrange(0, n // 2 + 1)))
            for node in byz:
                values[node] = None
            live = sorted(rng.sample(range(n), rng.randrange(2, n + 1)))
            degree = rng.randrange(1, n)
            self._check(self._StubView(n, values, byz, live), degree)

    def test_fully_converged_values_tie_everywhere(self):
        n = 9
        values = {v: 0.5 for v in range(n)}
        self._check(self._StubView(n, values), 4)

    def test_symmetric_distances_resolve_by_node_id(self):
        # Receiver value 0.5; senders at 0.4 and 0.6 are equidistant:
        # the spec's stable sort emits the smaller node id first.
        values = {0: 0.5, 1: 0.6, 2: 0.4, 3: 0.1, 4: 0.9}
        self._check(self._StubView(5, values), 2)

    def test_byzantine_fill_and_truncation(self):
        values = {0: 0.2, 1: None, 2: None, 3: None, 4: 0.8}
        view = self._StubView(5, values, byzantine={1, 2, 3})
        self._check(view, 2)  # truncates inside the Byzantine prefix
        self._check(view, 4)  # fills from honest values after it

    def test_bitwise_equal_distances_across_distinct_values(self):
        # Float rounding can make |v - mine| bitwise-identical for
        # *different* sender values (1.0 - 1e-17 == 1.0 - 0.0 == 1.0):
        # the spec's stable sort still orders those ties by node id.
        values = {0: 1.0, 1: 0.0, 2: 1e-17, 3: 2e-17}
        view = self._StubView(4, values)
        for degree in (1, 2, 3):
            self._check(view, degree)

    def test_mixed_side_rounded_ties(self):
        values = {0: 0.5, 1: 0.5 - 1e-17, 2: 0.5 + 1e-17, 3: 0.0, 4: 1.0}
        self._check(self._StubView(5, values), 3)
