"""Unit tests for the enforcing worst-case adversaries.

The central contract: whatever these adversaries do, the recorded trace
must satisfy the promised (T, D)-dynaDegree -- checked here with the
independent checker, including under crashes.
"""

import pytest

from repro.adversary.constrained import (
    LastMinuteQuorumAdversary,
    PhaseSkewAdversary,
    RotatingQuorumAdversary,
)
from repro.core.dac import DACProcess
from repro.faults.base import FaultPlan
from repro.faults.crash import staggered_crashes
from repro.net.dynadegree import check_dynadegree
from repro.net.ports import identity_ports
from repro.sim.engine import Engine

from tests.helpers import spread_inputs


def run_with(adversary, n, f=0, fault_plan=None, rounds=30):
    ports = identity_ports(n)
    plan = fault_plan or FaultPlan.fault_free_plan(n)
    inputs = spread_inputs(n)
    procs = {
        v: DACProcess(n, f, inputs[v], ports.self_port(v), epsilon=1e-4)
        for v in plan.non_byzantine
    }
    engine = Engine(procs, adversary, ports, fault_plan=plan, f=f)
    engine.run(rounds)
    assert engine.trace is not None
    return engine


class TestValidation:
    def test_bad_degree_rejected(self):
        with pytest.raises(ValueError, match="D must be >= 1"):
            RotatingQuorumAdversary(0)

    def test_bad_selector_rejected(self):
        with pytest.raises(ValueError, match="selector"):
            RotatingQuorumAdversary(2, selector="weird")

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="T must be >= 1"):
            LastMinuteQuorumAdversary(0, 2)


class TestRotatingQuorum:
    def test_promise_holds_fault_free(self):
        n = 7
        engine = run_with(RotatingQuorumAdversary(3), n)
        verdict = check_dynadegree(engine.trace.dynamic_graph(), 1, 3)
        assert verdict.holds

    def test_exactly_degree_links_per_node(self):
        n = 7
        engine = run_with(RotatingQuorumAdversary(3), n)
        for snap in engine.trace.rounds:
            for v in range(n):
                assert snap.graph.in_degree(v) == 3

    def test_neighborhood_rotates(self):
        n = 7
        engine = run_with(RotatingQuorumAdversary(3), n, rounds=4)
        hoods = [engine.trace.at(t).in_neighbors(0) for t in range(4)]
        assert len(set(hoods)) > 1

    def test_promise_holds_with_crashes_counting_live_senders(self):
        n = 9
        f = 4
        plan = FaultPlan(n, crashes=staggered_crashes(range(5, 9), first_round=2))
        engine = run_with(RotatingQuorumAdversary(4), n, f=f, fault_plan=plan, rounds=25)
        trace = engine.trace
        verdict = check_dynadegree(
            trace.dynamic_graph(),
            1,
            4,
            fault_free=plan.fault_free,
            senders_at=lambda t: trace.rounds[t].live_senders,
        )
        assert verdict.holds

    def test_all_selectors_keep_promise(self):
        n = 8
        for selector in ("rotate", "nearest", "random"):
            engine = run_with(RotatingQuorumAdversary(4, selector=selector), n)
            verdict = check_dynadegree(engine.trace.dynamic_graph(), 1, 4)
            assert verdict.holds, selector


class TestLastMinuteQuorum:
    def test_silent_until_window_end(self):
        n = 6
        engine = run_with(LastMinuteQuorumAdversary(3, 3), n, rounds=9)
        sizes = engine.trace.dynamic_graph().edges_per_round()
        assert sizes[0] == 0 and sizes[1] == 0 and sizes[2] > 0
        assert sizes[3] == 0 and sizes[5] > 0

    def test_promise_holds_on_sliding_windows(self):
        n = 6
        engine = run_with(LastMinuteQuorumAdversary(3, 3), n, rounds=20)
        verdict = check_dynadegree(engine.trace.dynamic_graph(), 3, 3)
        assert verdict.holds

    def test_promise_tuple(self):
        assert LastMinuteQuorumAdversary(4, 2).promised_dynadegree() == (4, 2)
        assert RotatingQuorumAdversary(2).promised_dynadegree() == (1, 2)

    def test_window_one_equals_every_round(self):
        n = 5
        engine = run_with(LastMinuteQuorumAdversary(1, 2), n, rounds=6)
        assert all(count > 0 for count in engine.trace.dynamic_graph().edges_per_round())


class TestPhaseSkew:
    def test_promise_holds(self):
        n = 9
        adv = PhaseSkewAdversary(4, slow={6, 7, 8}, window=3)
        engine = run_with(adv, n, rounds=18)
        verdict = check_dynadegree(engine.trace.dynamic_graph(), 3, 4)
        assert verdict.holds

    def test_fast_nodes_fed_every_round(self):
        n = 9
        adv = PhaseSkewAdversary(4, slow={6, 7, 8}, window=3)
        engine = run_with(adv, n, rounds=6)
        for snap in engine.trace.rounds:
            for v in range(6):
                assert snap.graph.in_degree(v) == 4

    def test_slow_nodes_fed_once_per_window(self):
        n = 9
        adv = PhaseSkewAdversary(4, slow={6, 7, 8}, window=3)
        engine = run_with(adv, n, rounds=9)
        for t, snap in enumerate(engine.trace.rounds):
            degree = snap.graph.in_degree(7)
            if (t + 1) % 3 == 0:
                assert degree == 4
            else:
                assert degree == 0

    def test_needs_enough_fast_nodes(self):
        adv = PhaseSkewAdversary(4, slow={2, 3, 4, 5, 6, 7, 8}, window=2)
        with pytest.raises(ValueError, match="fast nodes"):
            run_with(adv, 9, rounds=1)

    def test_validation(self):
        with pytest.raises(ValueError, match="D must be >= 1"):
            PhaseSkewAdversary(0, slow=set())
        with pytest.raises(ValueError, match="T must be >= 1"):
            PhaseSkewAdversary(2, slow=set(), window=0)
