"""Property-based round-trip and error-surface tests for the spec DSL.

The spec layer's contract is *identity under transport*: any spec --
hand-written, generated, or re-encoded -- must survive encode/parse
and JSON round-trips unchanged, resolve to the same parameters either
way, and hash identically in every process and for every parameter
insertion order. Malformed specs must fail with a
:class:`repro.scenario.SpecError` that names the offending field.
"""

from __future__ import annotations

import json
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenario import (
    ComponentRef,
    ScenarioSpec,
    SpecError,
    parse_spec,
    resolve,
    spec_for,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


# -- generators ------------------------------------------------------------


def random_specs(master_seed: int, count: int) -> list[ScenarioSpec]:
    """Valid random specs across every built-in family."""
    rng = random.Random(master_seed)
    out = []
    for _ in range(count):
        family = rng.choice(("dac", "dbac", "byz", "baseline", "averaging"))
        seed = rng.randrange(10_000)
        rounds = rng.choice((None, rng.randrange(1, 500)))
        if family == "dac":
            spec = spec_for(
                "dac",
                {
                    "n": rng.randrange(4, 12),
                    "window": rng.randint(1, 3),
                    "selector": rng.choice(("rotate", "nearest", "random")),
                    "crash_nodes": rng.choice((None, 0, 1)),
                },
                seed=seed,
                rounds=rounds,
            )
        elif family == "dbac":
            spec = spec_for(
                "dbac",
                {
                    "n": rng.randrange(6, 12),
                    "strategy": rng.choice(("extreme", "pin-high", "random")),
                    "window": rng.randint(1, 2),
                },
                seed=seed,
                rounds=rounds,
            )
        elif family == "byz":
            spec = spec_for(
                "byz",
                # "none" is a reserved bareword: as a mode it must ride
                # as a *string*, which the encoder quotes automatically.
                {"n": rng.randrange(4, 9),
                 "mode": rng.choice(("block_min", "block_max", "rotate", "none"))},
                seed=seed,
                rounds=rounds,
            )
        else:
            params = {"n": rng.randrange(4, 9), "f": rng.randint(0, 1)}
            if family == "baseline":
                params["algorithm"] = rng.choice(("midpoint", "trimmed"))
            else:
                params["rule"] = rng.choice(("mean", "midpoint"))
            spec = spec_for(family, params, seed=seed, rounds=rounds)
        out.append(spec)
    return out


SPECS = random_specs(20240, 25)


# -- round-trips -----------------------------------------------------------


@pytest.mark.parametrize("index", range(len(SPECS)))
def test_encode_parse_identity(index):
    spec = SPECS[index]
    assert parse_spec(spec.encode()) == spec


@pytest.mark.parametrize("index", range(len(SPECS)))
def test_json_roundtrip_identity(index):
    spec = SPECS[index]
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    # The JSON form is accepted wherever DSL text is.
    assert parse_spec(spec.to_json()) == spec


@pytest.mark.parametrize("index", range(len(SPECS)))
def test_resolution_identity_across_transport(index):
    spec = SPECS[index]
    direct = resolve(spec)
    via_text = resolve(spec.encode())
    via_json = resolve(spec.to_json())
    assert dict(via_text.params) == dict(direct.params)
    assert dict(via_json.params) == dict(direct.params)
    assert via_text.entry is direct.entry


@pytest.mark.parametrize("index", range(len(SPECS)))
def test_canonical_spec_is_a_fixpoint(index):
    canonical = resolve(SPECS[index]).canonical_spec()
    again = resolve(parse_spec(canonical.encode())).canonical_spec()
    assert again == canonical
    assert again.content_hash == canonical.content_hash


def test_content_hash_independent_of_insertion_order():
    forward = ComponentRef.make("dac", 1, n=9, f=4, epsilon=1e-3)
    backward = ComponentRef.make("dac", 1, epsilon=1e-3, f=4, n=9)
    assert forward == backward
    assert (
        ScenarioSpec(algorithm=forward).content_hash
        == ScenarioSpec(algorithm=backward).content_hash
    )


def test_content_hash_stable_across_processes():
    text = (
        "algorithm: dbac@1(n=11, f=2); network: dynadegree@1(window=2); "
        "seed: 7; rounds: 400"
    )
    here = parse_spec(text).content_hash
    script = (
        "from repro.scenario import parse_spec; "
        f"print(parse_spec({text!r}).content_hash)"
    )
    there = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": str(REPO_SRC), "PYTHONHASHSEED": "random"},
    ).stdout.strip()
    assert there == here


def test_content_hash_golden_value():
    # The hash semantics are a published contract: blake2b-128 over the
    # canonical JSON (sorted keys, minimal separators). If this value
    # moves, every externally recorded spec hash silently dangles --
    # bump spec versions instead of changing the encoding.
    spec = parse_spec("algorithm: dac@1(n=9, f=4); seed: 7")
    assert spec.content_hash == ScenarioSpec(
        algorithm=ComponentRef.make("dac", 1, f=4, n=9), seed=7
    ).content_hash
    payload = json.loads(spec.to_json())
    assert payload["algorithm"]["params"] == {"f": 4, "n": 9}


def test_reserved_barewords_are_quoted_on_encode():
    spec = spec_for("byz", {"n": 5, "mode": "none"})
    encoded = spec.encode()
    assert 'mode="none"' in encoded
    back = parse_spec(encoded)
    assert back == spec
    assert resolve(back).params["mode"] == "none"


def test_unquoted_none_is_the_null_literal():
    with pytest.raises(SpecError) as err:
        resolve("algorithm: byz@1(n=5); adversary: mobile@1(mode=none)")
    assert err.value.field == "adversary.mode"


# -- error surface ---------------------------------------------------------


@pytest.mark.parametrize(
    "text,field",
    [
        ("algorithm: nosuch@1(n=5)", "algorithm"),
        ("algorithm: dac@9(n=5)", "algorithm"),
        ("algorithm: dac@0(n=5)", "algorithm.version"),
        ("algorithm: dac@1(n=5, zap=3)", "algorithm.zap"),
        ("algorithm: dac@1(n=true)", "algorithm.n"),
        ("algorithm: dac@1(n=5, f=none); faults: crash@1(crash_start=no)",
         "faults.crash_start"),
        ("algorithm: dac@1(n=5); network: dynadegree@1(selector=spiral)",
         "network.selector"),
        ("algorithm: dac@1(n=5); adversary: mobile@1", "adversary"),
        ("algorithm: dac@1", "algorithm.n"),
        ("algorithm: averaging@1(n=5); faults: crash@1", "faults"),
        ("algorithm: dac@1(n=5)\nalgorithm: dac@1(n=7)", "algorithm"),
        ("seed: 3", "algorithm"),
        ("algorithm: dac@1(n=5); seed: x", "seed"),
        ("gibberish here", "spec"),
    ],
)
def test_malformed_specs_name_the_field(text, field):
    with pytest.raises(SpecError) as err:
        resolve(text)
    assert err.value.field == field
    assert str(err.value).startswith(f"{field}: ")


def test_spec_error_is_a_value_error():
    # Callers that predate the DSL catch ValueError; SpecError must
    # stay substitutable.
    assert issubclass(SpecError, ValueError)
