"""Auto-enrolling conformance suite over the algorithm registry.

Nothing in this file names a family. The parametrization iterates
``repro.scenario.algorithm_entries()`` and each family's declared
``conformance`` configurations, so registering a new algorithm --
:mod:`repro.families.averaging` is the living example -- enrolls it
here with zero new test code:

* every declared algorithm x adversary pairing runs through the full
  differential executor suite (serial sweep, legacy loop, traced,
  both batch backends, ``workers=4``, and the pooled batched leg)
  pinned to full ``state_key`` equality;
* the same pairings re-run on deterministically fuzzed seeds, so the
  pinning is not an artifact of seed 0;
* spec resolution is checked against the direct trial function --
  same module-level callable, same summary;
* a completeness check fails if a ``run_*_trial`` family exists in
  :mod:`repro.workloads` or :mod:`repro.families` that no registry
  entry claims, so the registry cannot silently drift from the
  workloads.
"""

from __future__ import annotations

import importlib
import pkgutil
import random

import pytest

import repro.families
import repro.workloads
from repro.scenario import algorithm_entries, resolve, spec_for
from tests.helpers import assert_equivalent_runs, differential_executors


def _conformance_cases():
    cases = []
    for entry in algorithm_entries():
        for adversary, configs in sorted(entry.obj.conformance.items()):
            for i, params in enumerate(configs):
                cases.append(
                    pytest.param(
                        entry.name,
                        dict(params),
                        id=f"{entry.name}-{adversary}-{i}",
                    )
                )
    return cases


_CASES = _conformance_cases()


@pytest.mark.parametrize("family,params", _CASES)
def test_pairing_pins_all_executors(family, params):
    """Declared configs agree across every executor, pool leg included."""
    config = {"family": family, **params, "seeds": (0, 1)}
    assert_equivalent_runs([config], differential_executors(pooled=2))


@pytest.mark.parametrize(
    "family,params,case_index",
    [
        pytest.param(*case.values, index, id=f"{case.id}-fuzz")
        for index, case in enumerate(_CASES)
    ],
)
def test_pairing_pins_fuzzed_seeds(family, params, case_index):
    """The same pairings hold on fuzzed seeds, not just seed 0."""
    rng = random.Random(9_000 + case_index)
    seeds = tuple(rng.randrange(10_000) for _ in range(2))
    config = {"family": family, **params, "seeds": seeds}
    assert_equivalent_runs([config], differential_executors())


@pytest.mark.parametrize(
    "entry", algorithm_entries(), ids=lambda e: f"{e.name}@{e.version}"
)
def test_spec_resolution_matches_direct_trial(entry):
    """``spec_for`` round-trips a conformance config onto the exact trial."""
    adversary, configs = next(iter(sorted(entry.obj.conformance.items())))
    resolved = resolve(spec_for(entry.name, dict(configs[0]), version=entry.version))
    assert resolved.trial_fn is entry.obj.trial
    direct = entry.obj.trial(seed=3, **resolved.trial_kwargs())
    assert resolved.run(3) == direct


@pytest.mark.parametrize(
    "entry", algorithm_entries(), ids=lambda e: f"{e.name}@{e.version}"
)
def test_family_declares_a_complete_surface(entry):
    """Every family ships conformance configs and a batched trial form."""
    family = entry.obj
    assert family.conformance, (
        f"family {entry.name!r} declares no conformance configurations; "
        "the suite cannot pin it"
    )
    assert callable(family.trial), f"family {entry.name!r} has no trial"
    # Module-level (hence picklable under workers=N) with the batched
    # attachment Sweep's batch knob dispatches to.
    module = importlib.import_module(family.trial.__module__)
    assert getattr(module, family.trial.__name__) is family.trial
    assert callable(getattr(family.trial, "batch_fn", None)), (
        f"trial of family {entry.name!r} carries no batch_fn attachment"
    )


def _trial_modules():
    yield repro.workloads
    for info in pkgutil.iter_modules(repro.families.__path__):
        yield importlib.import_module(f"repro.families.{info.name}")


def test_every_trial_family_is_registered():
    """Completeness: no ``run_*_trial`` exists outside the registry."""
    claimed = {entry.obj.trial for entry in algorithm_entries()}
    missing = []
    for module in _trial_modules():
        for name, obj in sorted(vars(module).items()):
            if (
                name.startswith("run_")
                and name.endswith("_trial")
                and callable(obj)
                and getattr(obj, "__module__", None) == module.__name__
                and obj not in claimed
            ):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, (
        "trial families with no registry entry (register them so the "
        f"conformance suite can pin them): {', '.join(missing)}"
    )
