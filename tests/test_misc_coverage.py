"""Gap-filling tests for small paths not covered elsewhere."""


from repro.adversary.base import StaticAdversary
from repro.adversary.mobile import MobileOmissionAdversary
from repro.core.dac import DACProcess
from repro.core.piggyback import PiggybackDACProcess
from repro.faults.base import FaultPlan
from repro.net.dynadegree import DynaDegreeProfile, min_window_for_degree
from repro.net.dynamic import DynamicGraph
from repro.net.graph import DirectedGraph
from repro.net.ports import identity_ports
from repro.sim.engine import Engine, EngineView
from repro.sim.messages import StateMessage
from repro.sim.node import Delivery
from repro.sim.rng import child_rng
from repro.workloads import build_dbac_execution

from tests.helpers import spread_inputs


class TestEngineOdds:
    def make_engine(self, n=4):
        ports = identity_ports(n)
        inputs = spread_inputs(n)
        procs = {v: DACProcess(n, 0, inputs[v], v, epsilon=0.25) for v in range(n)}
        return Engine(procs, StaticAdversary(), ports)

    def test_state_snapshots_shape(self):
        engine = self.make_engine()
        snaps = engine.state_snapshots()
        assert set(snaps) == {0, 1, 2, 3}
        assert set(snaps[0]) == {"value", "phase", "output"}

    def test_view_exposes_ports(self):
        engine = self.make_engine()
        view = EngineView(engine, 0, {})
        assert view.ports is engine.ports
        assert view.ports.port_of(1, 2) == 2

    def test_stop_condition_true_after_last_round(self):
        engine = self.make_engine()
        executed = engine.run(100, stop_when=Engine.all_fault_free_output)
        assert engine.all_fault_free_output()
        assert executed < 100


class TestDynaDegreeOdds:
    def test_min_window_respects_cap(self):
        # Figure-1-like trace needs T=2; with max_window=1 we must get None.
        dyn = DynamicGraph(3)
        for t in range(6):
            edges = [(0, 1), (1, 0), (1, 2), (2, 1)] if t % 2 == 0 else []
            dyn.record(DirectedGraph(3, edges))
        assert min_window_for_degree(dyn, 1, max_window=1) is None
        assert min_window_for_degree(dyn, 1, max_window=3) == 2

    def test_profile_with_senders_filter(self):
        dyn = DynamicGraph(2)
        for _ in range(4):
            dyn.record(DirectedGraph(2, [(0, 1), (1, 0)]))
        profile = DynaDegreeProfile.from_trace(
            dyn, windows=[1], fault_free=[1], senders_at=lambda t: {1}
        )
        # Node 1's only sender (node 0) is filtered out everywhere.
        assert profile.max_degree_by_window[1] == 0


class TestMobileOmissionOdds:
    def test_no_promise_below_three_nodes(self):
        adv = MobileOmissionAdversary("rotate")
        adv.setup(2, FaultPlan.fault_free_plan(2), child_rng(0, "adv"))
        assert adv.promised_dynadegree() is None

    def test_rotate_skips_self_victim(self):
        adv = MobileOmissionAdversary("rotate")
        adv.setup(3, FaultPlan.fault_free_plan(3), child_rng(0, "adv"))

        class View:
            n = 3

            def value(self, u):
                return 0.0

        # At t=0, receiver 0's rotate victim would be node 0 itself ->
        # no drop for node 0 that round.
        g = adv.choose(0, View())
        assert g.in_degree(0) == 2


class TestPiggybackBuffer:
    def test_buffer_deduplicates(self):
        p = PiggybackDACProcess(5, 0, 0.0, 0, epsilon=0.25, k=4)
        msg = StateMessage(0.5, 0)
        p.deliver([Delivery(1, msg)])
        p.deliver([Delivery(2, msg)])  # same (value, phase) from elsewhere
        history = p.broadcast().history
        assert history.count((0.5, 0)) == 1

    def test_buffer_prefers_high_phases(self):
        p = PiggybackDACProcess(9, 0, 0.0, 0, epsilon=2.0, k=1)
        # end_phase 0: node is frozen; feed buffer via _remember directly.
        p._remember(0.1, 0)
        p._remember(0.2, 5)
        p._remember(0.3, 2)
        assert p._relay_buffer[0] == (0.2, 5)


class TestWorkloadsOdds:
    def test_dbac_execution_with_window(self):
        ex = build_dbac_execution(n=6, f=1, window=3)
        assert ex["adversary"].promised_dynadegree() == (3, 4)

    def test_dbac_end_phase_passthrough(self):
        ex = build_dbac_execution(n=6, f=1, end_phase=4)
        proc = next(iter(ex["processes"].values()))
        assert proc.end_phase == 4
