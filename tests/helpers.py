"""Shared plain-function helpers for tests (importable, unlike conftest).

Home of the **unified differential-testing harness**: every "rewrite X
but stay bit-identical" PR so far (engine fast path, batched kernels,
Topology layer, the port-major delivery sweep) was only safe because
full-state equality was pinned across executors. The harness makes
that one reusable assertion instead of per-file copy-pasted grid
loops:

- a **config** is a plain dict naming a scenario family (``"dac"``,
  ``"dbac"``, ``"mobile"`` or ``"baseline"``), its parameters, and a
  tuple of seeds;
- an **executor** maps a config to one canonical result per seed --
  rounds, stopped, inputs, outputs and full per-node ``state_key()``s
  (the strongest equality available);
- :func:`assert_equivalent_runs` runs a grid of configs through a
  suite of executors and asserts every executor agrees with the first,
  printing the offending config (seed included) for reproduction.

Executors cover the serial engine's port-major sweep, the legacy
sender-major loop, fully traced execution, both
:mod:`repro.sim.batch` backends (multi-seed lanes, exercising
lock-step interplay), a ``workers=4`` process-pool leg, and an
optional pooled *batched* leg (persistent pool + shared-memory
arenas + guided chunking -- the full zero-copy dispatch stack).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.adversary.constrained import (
    LastMinuteQuorumAdversary,
    RotatingQuorumAdversary,
)
from repro.adversary.mobile import MOBILE_MODES, MobileOmissionAdversary
from repro.core.baselines import IteratedMidpointProcess, TrimmedMeanProcess
from repro.core.dac import DACProcess
from repro.core.phases import dac_end_phase
from repro.faults.base import FaultPlan
from repro.net.ports import random_ports
from repro.sim.batch import (
    numpy_available,
    run_baseline_batch,
    run_byz_batch,
    run_dac_batch,
    run_dbac_batch,
)
from repro.sim.engine import Engine
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.rng import child_rng, spawn_inputs
from repro.workloads import (
    TRIAL_BYZANTINE_STRATEGIES,
    build_dac_execution,
    build_dbac_execution,
    dac_degree,
)

#: Sentinel an executor returns when a config is outside its domain
#: (e.g. the numpy kernel for a non-vectorizable selector). The
#: harness skips the comparison instead of failing.
SKIPPED = object()


def spread_inputs(n: int) -> list[float]:
    """Evenly spread inputs over [0, 1] -- range exactly 1.0."""
    if n == 1:
        return [0.0]
    return [i / (n - 1) for i in range(n)]


# -- Configs ---------------------------------------------------------------

_FAMILY_DEFAULTS: dict[str, dict[str, Any]] = {
    "dac": {
        "f": None,  # boundary (n - 1) // 2
        "window": 1,
        "selector": "rotate",
        "crash_nodes": None,  # default: f
        "epsilon": 1e-3,
        "max_rounds": None,  # family default (rounds_upper_bound based)
    },
    "dbac": {
        "f": None,  # boundary (n - 1) // 5
        "window": 1,
        "selector": "nearest",
        "strategy": "extreme",
        "epsilon": 1e-3,
        "max_rounds": 2_000,
    },
    "mobile": {
        "mode": "block_min",
        "epsilon": 1e-3,
        "max_rounds": 2_000,
    },
    "baseline": {
        "algorithm": "midpoint",
        "f": 0,
        "window": 1,
        "selector": "rotate",
        "epsilon": 1e-3,
        "num_rounds": None,  # family default: dac_end_phase(epsilon)
    },
}

_BASELINE_PROCESSES = {
    "midpoint": IteratedMidpointProcess,
    "trimmed": TrimmedMeanProcess,
}


def normalize_config(config: dict[str, Any]) -> dict[str, Any]:
    """Fill family defaults and canonicalize the seed list.

    Accepts ``seed=7`` as shorthand for ``seeds=(7,)``. The result is
    a complete, deterministic parameter assignment, so it doubles as
    the reproduction recipe printed on divergence.
    """
    family = config.get("family", "dac")
    if family not in _FAMILY_DEFAULTS:
        raise ValueError(
            f"unknown family {family!r}; known: {sorted(_FAMILY_DEFAULTS)}"
        )
    full = dict(_FAMILY_DEFAULTS[family])
    full["family"] = family
    full.update(config)
    if "seed" in full:
        if "seeds" in full:
            raise ValueError("pass either seed or seeds, not both")
        full["seeds"] = (full.pop("seed"),)
    full["seeds"] = tuple(int(s) for s in full.get("seeds", (0,)))
    if "n" not in full:
        raise ValueError(f"config needs n: {config!r}")
    if family == "dac":
        if full["f"] is None:
            full["f"] = (full["n"] - 1) // 2
    elif family == "dbac":
        if full["f"] is None:
            full["f"] = (full["n"] - 1) // 5
    elif family == "mobile":
        if full["mode"] not in MOBILE_MODES:
            raise ValueError(f"unknown mobile mode {full['mode']!r}")
    else:
        if full["algorithm"] not in _BASELINE_PROCESSES:
            raise ValueError(f"unknown baseline algorithm {full['algorithm']!r}")
    return full


def _build_serial(
    config: dict[str, Any], seed: int
) -> tuple[dict, Callable, int, str]:
    """(engine kwargs, stop condition, max_rounds, stop mode) for one lane."""
    family = config["family"]
    epsilon = config["epsilon"]
    if family == "dac":
        kwargs = build_dac_execution(
            n=config["n"],
            f=config["f"],
            epsilon=epsilon,
            seed=seed,
            window=config["window"],
            selector=config["selector"],
            crash_nodes=config["crash_nodes"],
        )
        max_rounds = config["max_rounds"] or kwargs["max_rounds"]
        return kwargs, Engine.all_fault_free_output, max_rounds, "output"
    if family == "dbac":
        factory = TRIAL_BYZANTINE_STRATEGIES[config["strategy"]]
        kwargs = build_dbac_execution(
            n=config["n"],
            f=config["f"],
            epsilon=epsilon,
            seed=seed,
            window=config["window"],
            selector=config["selector"],
            byzantine_factory=lambda node: factory(),
        )
        stop = lambda eng: eng.fault_free_range() <= epsilon  # noqa: E731
        return kwargs, stop, config["max_rounds"], "oracle"
    if family == "baseline":
        # Averaging baseline under DAC's boundary adversary: fixed
        # round budget, output-based stopping (run_baseline_trial's
        # family, vectorized by BaselineBatchEngine).
        n = config["n"]
        num_rounds = config["num_rounds"]
        if num_rounds is None:
            num_rounds = dac_end_phase(epsilon)
        ports = random_ports(n, child_rng(seed, "ports"))
        inputs = spawn_inputs(seed, n)
        process_type = _BASELINE_PROCESSES[config["algorithm"]]
        processes = {
            v: process_type(
                n, config["f"], inputs[v], ports.self_port(v), num_rounds=num_rounds
            )
            for v in range(n)
        }
        degree = dac_degree(n)
        window = config["window"]
        if window == 1:
            adversary = RotatingQuorumAdversary(degree, selector=config["selector"])
        else:
            adversary = LastMinuteQuorumAdversary(
                window, degree, selector=config["selector"]
            )
        kwargs = {
            "processes": processes,
            "adversary": adversary,
            "ports": ports,
            "f": config["f"],
            "fault_plan": FaultPlan.fault_free_plan(n),
            "seed": seed,
        }
        return kwargs, Engine.all_fault_free_output, num_rounds + 2 * window, "output"
    # mobile: fault-free DAC on the complete graph minus one in-link
    # per receiver per round, oracle stopping (run_byz_trial's family).
    n = config["n"]
    ports = random_ports(n, child_rng(seed, "ports"))
    inputs = spawn_inputs(seed, n)
    processes = {
        v: DACProcess(n, 0, inputs[v], ports.self_port(v), epsilon=epsilon)
        for v in range(n)
    }
    kwargs = {
        "processes": processes,
        "adversary": MobileOmissionAdversary(config["mode"]),
        "ports": ports,
        "f": 0,
        "fault_plan": FaultPlan.fault_free_plan(n),
        "seed": seed,
    }
    stop = lambda eng: eng.fault_free_range() <= epsilon  # noqa: E731
    return kwargs, stop, config["max_rounds"], "oracle"


def _canonical(engine: Engine, result, stop_mode: str) -> dict[str, Any]:
    """One lane's canonical comparison payload (LaneResult-compatible)."""
    if stop_mode == "output":
        outputs = {
            v: engine.processes[v].output()
            for v in sorted(engine.fault_plan.fault_free)
            if engine.processes[v].has_output()
        }
    else:
        outputs = engine.fault_free_values()
    return {
        "rounds": int(result),
        "stopped": result.stopped,
        "inputs": {
            node: proc.input_value for node, proc in engine.processes.items()
        },
        "outputs": outputs,
        "state_keys": {
            node: proc.state_key() for node, proc in engine.processes.items()
        },
    }


def run_config_serial(
    config: dict[str, Any],
    *,
    traced: bool = False,
    sweep: bool = True,
    wrap_adversary: Callable | None = None,
) -> list[dict[str, Any]]:
    """Run every seed of ``config`` on the serial engine.

    ``traced`` records a full trace (snapshots assembled after the
    sweep); ``sweep=False`` forces the legacy sender-major loop (the
    port-major sweep's reference implementation -- combined with
    ``traced=True`` it exercises the legacy loop's inline snapshot
    path); ``wrap_adversary`` lets callers interpose on the chosen
    graphs (e.g. the ``DirectedGraph`` shim round-trip in
    test_topology_equivalence).
    """
    config = normalize_config(config)
    results = []
    for seed in config["seeds"]:
        kwargs, stop, max_rounds, stop_mode = _build_serial(config, seed)
        adversary = kwargs["adversary"]
        if wrap_adversary is not None:
            adversary = wrap_adversary(adversary)
        engine = Engine(
            kwargs["processes"],
            adversary,
            kwargs["ports"],
            fault_plan=kwargs["fault_plan"],
            f=kwargs["f"],
            seed=kwargs["seed"],
            record_trace=traced,
        )
        engine._use_sweep = sweep
        result = engine.run(max_rounds, stop_when=stop)
        results.append(_canonical(engine, result, stop_mode))
    return results


def differential_trial(seed: int, **params: Any) -> dict[str, Any]:
    """Picklable per-seed trial for the ``workers=N`` executor."""
    config = dict(params)
    config["seeds"] = (seed,)
    return run_config_serial(config)[0]


def differential_trial_batch(seeds: Any = (), **params: Any) -> list[dict[str, Any]]:
    """Picklable batched form of :func:`differential_trial`.

    Dispatched by the pooled executor through the persistent pool's
    batched path (``run_trials(batch=B, batch_fn=...)``), so the
    zero-copy stack -- warm workers, manifest shipping, guided chunks
    -- is exercised against the serial reference. Falls back to the
    auto backend, which resolves per family exactly like the direct
    batch executors.
    """
    config = dict(params)
    config["seeds"] = tuple(seeds)
    result = run_config_batch(config, "auto")
    assert result is not SKIPPED
    return result


def run_config_batch(
    config: dict[str, Any], backend: str
) -> list[dict[str, Any]] | object:
    """Run ``config``'s seeds as one lock-step batch, or ``SKIPPED``.

    All seeds go through a single batch-engine call, so multi-seed
    configs exercise genuine lane interplay (mixed termination rounds,
    shared kernel state), not just per-lane agreement.
    """
    config = normalize_config(config)
    family = config["family"]
    seeds = list(config["seeds"])
    if backend == "numpy":
        if not numpy_available():
            return SKIPPED
        if family == "dac" and config["selector"] != "rotate":
            return SKIPPED  # the DAC kernel replicates rotate only
        if family == "dbac" and (
            config["selector"] == "random" or config["strategy"] == "random"
        ):
            return SKIPPED  # RNG-stream consumers fall back to python
        if family == "baseline" and config["selector"] == "random":
            return SKIPPED  # the value kernel replicates rotate/nearest only
    if family == "dac":
        lanes = run_dac_batch(
            config["n"],
            config["f"],
            seeds,
            epsilon=config["epsilon"],
            window=config["window"],
            selector=config["selector"],
            crash_nodes=config["crash_nodes"],
            max_rounds=config["max_rounds"],
            backend=backend,
        )
    elif family == "dbac":
        lanes = run_dbac_batch(
            config["n"],
            config["f"],
            seeds,
            epsilon=config["epsilon"],
            window=config["window"],
            selector=config["selector"],
            strategy=config["strategy"],
            max_rounds=config["max_rounds"],
            backend=backend,
        )
    elif family == "baseline":
        lanes = run_baseline_batch(
            config["n"],
            seeds,
            algorithm=config["algorithm"],
            f=config["f"],
            epsilon=config["epsilon"],
            window=config["window"],
            selector=config["selector"],
            num_rounds=config["num_rounds"],
            backend=backend,
        )
    else:
        lanes = run_byz_batch(
            config["n"],
            None,
            seeds,
            epsilon=config["epsilon"],
            adversary=f"mobile-{config['mode']}",
            max_rounds=config["max_rounds"],
            backend=backend,
        )
    return [
        {
            "rounds": lane.rounds,
            "stopped": lane.stopped,
            "inputs": lane.inputs,
            "outputs": lane.outputs,
            "state_keys": lane.state_keys,
        }
        for lane in lanes
    ]


# -- Executor suite --------------------------------------------------------


def serial_executor(**options: Any) -> Callable:
    """Per-config executor over :func:`run_config_serial`."""

    def executor(config: dict[str, Any]) -> list[dict[str, Any]]:
        return run_config_serial(config, **options)

    return executor


def batch_executor(backend: str) -> Callable:
    """Per-config executor over :func:`run_config_batch`."""

    def executor(config: dict[str, Any]):
        return run_config_batch(config, backend)

    return executor


def _grid_specs(configs: list[dict[str, Any]]) -> list[TrialSpec]:
    """Flatten normalized configs into per-seed TrialSpecs, grid order."""
    specs = []
    for config in configs:
        params = tuple(sorted((k, v) for k, v in config.items() if k != "seeds"))
        for seed in config["seeds"]:
            specs.append(TrialSpec(params, seed=seed))
    return specs


def _regroup(configs: list[dict[str, Any]], flat: list[Any]) -> list[list[Any]]:
    """Split a flat per-seed result list back into per-config groups."""
    grouped, index = [], 0
    for config in configs:
        count = len(config["seeds"])
        grouped.append(flat[index : index + count])
        index += count
    return grouped


def workers_executor(workers: int = 4) -> Callable:
    """Grid-mode executor: all (config, seed) lanes through one
    ``run_trials(workers=N)`` pool, results regrouped per config."""

    def executor(configs: list[dict[str, Any]]):
        configs = [normalize_config(config) for config in configs]
        flat = run_trials(differential_trial, _grid_specs(configs), workers=workers)
        return _regroup(configs, flat)

    executor.grid_mode = True
    return executor


def pooled_executor(workers: int = 4, batch: int = 4) -> Callable:
    """Grid-mode executor over the full zero-copy dispatch stack.

    Batched groups fan out over the *persistent* pool (warm workers,
    arenas enabled, guided chunking) via
    :func:`differential_trial_batch` -- the strongest parallel leg:
    any divergence between warm-worker shared-memory state and the
    serial reference fails the harness equality.
    """

    def executor(configs: list[dict[str, Any]]):
        configs = [normalize_config(config) for config in configs]
        flat = run_trials(
            differential_trial,
            _grid_specs(configs),
            workers=workers,
            batch=batch,
            batch_fn=differential_trial_batch,
            pool="persist",
            arenas=True,
        )
        return _regroup(configs, flat)

    executor.grid_mode = True
    return executor


def differential_executors(
    *,
    workers: int | None = 4,
    legacy: bool = True,
    traced: bool = True,
    pooled: int | None = None,
) -> dict[str, Callable]:
    """The standard executor suite, reference (port-major sweep) first.

    ``pooled=B`` appends the persistent-pool batched leg (batch size
    ``B`` over ``workers`` processes, arenas on) -- off by default
    because it spins real worker processes; the fuzz grids turn it on.
    """
    executors: dict[str, Callable] = {"serial-fast": serial_executor()}
    if legacy:
        executors["serial-legacy"] = serial_executor(sweep=False)
    if traced:
        executors["traced"] = serial_executor(traced=True)
        if legacy:
            executors["traced-legacy"] = serial_executor(traced=True, sweep=False)
    executors["batch-python"] = batch_executor("python")
    executors["batch-numpy"] = batch_executor("numpy")
    if workers:
        executors[f"workers-{workers}"] = workers_executor(workers)
    if pooled:
        executors[f"pooled-batch-{pooled}"] = pooled_executor(
            workers or 4, pooled
        )
    return executors


def assert_equivalent_runs(
    grid, executors: dict[str, Callable] | None = None
) -> dict[str, list]:
    """Assert full-state equivalence of every executor on every config.

    ``grid`` is an iterable of config dicts (see
    :func:`normalize_config`); ``executors`` maps name -> executor
    (default: :func:`differential_executors`). The first executor is
    the reference; any divergence fails with the complete config --
    seeds included -- so one paste reproduces it. Returns the
    per-executor results for callers wanting extra assertions.
    """
    configs = [normalize_config(config) for config in grid]
    if executors is None:
        executors = differential_executors()
    names = list(executors)
    if not names:
        raise ValueError("need at least one executor")
    results: dict[str, list] = {}
    for name, executor in executors.items():
        if getattr(executor, "grid_mode", False):
            results[name] = executor(configs)
        else:
            results[name] = [executor(config) for config in configs]
    reference_name = names[0]
    for index, config in enumerate(configs):
        reference = results[reference_name][index]
        assert reference is not SKIPPED, (
            f"reference executor {reference_name!r} cannot skip: {config!r}"
        )
        for name in names[1:]:
            outcome = results[name][index]
            if outcome is SKIPPED:
                continue
            assert outcome == reference, (
                f"executor {name!r} diverged from {reference_name!r}\n"
                f"  config (reproduce with this): {config!r}\n"
                f"  reference: {_divergence(reference, outcome)}"
            )
    return results


def _divergence(reference, outcome) -> str:
    """A compact first-divergence description for assertion messages."""
    if not isinstance(reference, list) or not isinstance(outcome, list):
        return f"{reference!r} != {outcome!r}"
    if len(reference) != len(outcome):
        return f"lane counts differ: {len(reference)} vs {len(outcome)}"
    for lane, (ref, out) in enumerate(zip(reference, outcome)):
        if ref == out:
            continue
        for key in ref:
            if ref.get(key) != out.get(key):
                return (
                    f"lane {lane} field {key!r}: {ref.get(key)!r} != {out.get(key)!r}"
                )
        return f"lane {lane} differs"
    return "equal (?)"
