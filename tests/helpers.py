"""Shared plain-function helpers for tests (importable, unlike conftest)."""

from __future__ import annotations


def spread_inputs(n: int) -> list[float]:
    """Evenly spread inputs over [0, 1] -- range exactly 1.0."""
    if n == 1:
        return [0.0]
    return [i / (n - 1) for i in range(n)]
