"""Shared plain-function helpers for tests (importable, unlike conftest).

Home of the **unified differential-testing harness**: every "rewrite X
but stay bit-identical" PR so far (engine fast path, batched kernels,
Topology layer, the port-major delivery sweep, the scenario registry)
was only safe because full-state equality was pinned across executors.
The harness makes that one reusable assertion instead of per-file
copy-pasted grid loops:

- a **config** is a plain dict naming a registered scenario family
  (``"dac"``, ``"dbac"``, ``"byz"`` -- historical alias ``"mobile"``
  -- ``"baseline"``, ``"averaging"``, ...), flat parameters, and a
  tuple of seeds;
- an **executor** maps a config to one canonical result per seed --
  rounds, stopped, inputs, outputs and full per-node ``state_key()``s
  (the strongest equality available);
- :func:`assert_equivalent_runs` runs a grid of configs through a
  suite of executors and asserts every executor agrees with the first,
  printing the offending config (seed included) for reproduction.

Since PR 9 the family table is **registry-driven**: defaults, serial
builds and batch dispatch all come from the
:mod:`repro.scenario` registry entries, so a newly registered family
is covered by every executor -- including the pooled/batched legs
added in PR 8 -- with zero edits here. Executors cover the serial
engine's port-major sweep, the legacy sender-major loop, fully traced
execution, both :mod:`repro.sim.batch` backends (multi-seed lanes,
exercising lock-step interplay), a ``workers=4`` process-pool leg,
and an optional pooled *batched* leg (persistent pool + shared-memory
arenas + guided chunking -- the full zero-copy dispatch stack).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.scenario.registry import RegistryEntry, lookup
from repro.scenario.resolve import ensure_builtin_families, flat_params
from repro.sim.batch import numpy_available
from repro.sim.engine import Engine
from repro.sim.parallel import TrialSpec, run_trials

#: Sentinel an executor returns when a config is outside its domain
#: (e.g. the numpy kernel for a non-vectorizable selector). The
#: harness skips the comparison instead of failing.
SKIPPED = object()

#: Historical config-family spellings accepted by :func:`normalize_config`.
#: ``"mobile"`` predates the registry, where the mobile-omission runs
#: are the ``byz`` family's mobile adversary.
FAMILY_ALIASES = {"mobile": "byz"}


def spread_inputs(n: int) -> list[float]:
    """Evenly spread inputs over [0, 1] -- range exactly 1.0."""
    if n == 1:
        return [0.0]
    return [i / (n - 1) for i in range(n)]


# -- Configs ---------------------------------------------------------------


def family_entry(name: str) -> RegistryEntry:
    """The registry entry behind a config's ``family`` value."""
    ensure_builtin_families()
    return lookup("algorithm", FAMILY_ALIASES.get(name, name))


def _config_params(config: dict[str, Any]) -> dict[str, Any]:
    """The flat parameter assignment of a normalized config."""
    return {k: v for k, v in config.items() if k not in ("family", "seeds")}


def normalize_config(config: dict[str, Any]) -> dict[str, Any]:
    """Fill registry defaults and canonicalize the seed list.

    Accepts ``seed=7`` as shorthand for ``seeds=(7,)``. Defaults come
    from the family's registry entry -- declared parameters of the
    algorithm and its default components, the family's
    ``component_param_defaults``, and its ``harness_defaults`` (e.g.
    a fuzz-friendly ``max_rounds``) -- so the result is a complete,
    deterministic parameter assignment that doubles as the
    reproduction recipe printed on divergence. Raises ``ValueError``
    (a :class:`repro.scenario.SpecError` naming the field) for
    unknown families, parameters, or ill-typed values.
    """
    family = config.get("family", "dac")
    family = FAMILY_ALIASES.get(family, family)
    entry = family_entry(family)
    space = flat_params(entry)
    given = {k: v for k, v in config.items() if k not in ("family", "seed", "seeds")}
    unknown = sorted(set(given) - set(space))
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {unknown!r} for family {family!r} "
            f"(declared: {sorted(space)})"
        )
    overrides: dict[str, Any] = {}
    for defaults in entry.obj.component_param_defaults.values():
        overrides.update(defaults)
    overrides.update(entry.obj.harness_defaults)
    full: dict[str, Any] = {}
    for name, (section, pspec) in space.items():
        if name in given:
            full[name] = pspec.check(f"{section}.{name}", given[name])
        elif name in overrides:
            full[name] = overrides[name]
        elif pspec.required:
            raise ValueError(f"config needs {name}: {config!r}")
        else:
            full[name] = pspec.default
    full = entry.obj.normalize(full)
    full["family"] = family
    if "seed" in config:
        if "seeds" in config:
            raise ValueError("pass either seed or seeds, not both")
        full["seeds"] = (config["seed"],)
    else:
        full["seeds"] = tuple(int(s) for s in config.get("seeds", (0,)))
    full["seeds"] = tuple(int(s) for s in full["seeds"])
    return full


def _build_serial(
    config: dict[str, Any], seed: int
) -> tuple[dict, Callable, int, str]:
    """(engine kwargs, stop condition, max_rounds, stop mode) for one lane.

    Delegates to the registered family's ``build`` -- the same
    execution builder every other surface (trials, batch kernels,
    the CLI ``spec`` command) resolves through.
    """
    entry = family_entry(config["family"])
    kwargs = entry.obj.build(seed=seed, **_config_params(config))
    stop_mode = kwargs["stop_mode"]
    epsilon = kwargs["epsilon"]
    if stop_mode == "output":
        stop = Engine.all_fault_free_output
    else:
        stop = lambda eng: eng.fault_free_range() <= epsilon  # noqa: E731
    return kwargs, stop, kwargs["max_rounds"], stop_mode


def _canonical(engine: Engine, result, stop_mode: str) -> dict[str, Any]:
    """One lane's canonical comparison payload (LaneResult-compatible)."""
    if stop_mode == "output":
        outputs = {
            v: engine.processes[v].output()
            for v in sorted(engine.fault_plan.fault_free)
            if engine.processes[v].has_output()
        }
    else:
        outputs = engine.fault_free_values()
    return {
        "rounds": int(result),
        "stopped": result.stopped,
        "inputs": {
            node: proc.input_value for node, proc in engine.processes.items()
        },
        "outputs": outputs,
        "state_keys": {
            node: proc.state_key() for node, proc in engine.processes.items()
        },
    }


def run_config_serial(
    config: dict[str, Any],
    *,
    traced: bool = False,
    sweep: bool = True,
    wrap_adversary: Callable | None = None,
) -> list[dict[str, Any]]:
    """Run every seed of ``config`` on the serial engine.

    ``traced`` records a full trace (snapshots assembled after the
    sweep); ``sweep=False`` forces the legacy sender-major loop (the
    port-major sweep's reference implementation -- combined with
    ``traced=True`` it exercises the legacy loop's inline snapshot
    path); ``wrap_adversary`` lets callers interpose on the chosen
    graphs (e.g. the ``DirectedGraph`` shim round-trip in
    test_topology_equivalence).
    """
    config = normalize_config(config)
    results = []
    for seed in config["seeds"]:
        kwargs, stop, max_rounds, stop_mode = _build_serial(config, seed)
        adversary = kwargs["adversary"]
        if wrap_adversary is not None:
            adversary = wrap_adversary(adversary)
        engine = Engine(
            kwargs["processes"],
            adversary,
            kwargs["ports"],
            fault_plan=kwargs["fault_plan"],
            f=kwargs["f"],
            seed=kwargs["seed"],
            record_trace=traced,
        )
        engine._use_sweep = sweep
        result = engine.run(max_rounds, stop_when=stop)
        results.append(_canonical(engine, result, stop_mode))
    return results


def differential_trial(seed: int, **params: Any) -> dict[str, Any]:
    """Picklable per-seed trial for the ``workers=N`` executor."""
    config = dict(params)
    config["seeds"] = (seed,)
    return run_config_serial(config)[0]


def differential_trial_batch(seeds: Any = (), **params: Any) -> list[dict[str, Any]]:
    """Picklable batched form of :func:`differential_trial`.

    Dispatched by the pooled executor through the persistent pool's
    batched path (``run_trials(batch=B, batch_fn=...)``), so the
    zero-copy stack -- warm workers, manifest shipping, guided chunks
    -- is exercised against the serial reference. Falls back to the
    auto backend, which resolves per family exactly like the direct
    batch executors.
    """
    config = dict(params)
    config["seeds"] = tuple(seeds)
    result = run_config_batch(config, "auto")
    assert result is not SKIPPED
    return result


def run_config_batch(
    config: dict[str, Any], backend: str
) -> list[dict[str, Any]] | object:
    """Run ``config``'s seeds as one lock-step batch, or ``SKIPPED``.

    All seeds go through a single call of the family's registered
    ``batch`` dispatch, so multi-seed configs exercise genuine lane
    interplay (mixed termination rounds, shared kernel state), not
    just per-lane agreement. The ``numpy`` backend is skipped when
    numpy is missing or the family reports the parameters
    non-vectorizable (``vectorizable`` -- e.g. RNG-stream selectors,
    or a family with only the generic python lock-step form).
    """
    config = normalize_config(config)
    entry = family_entry(config["family"])
    params = _config_params(config)
    if backend == "numpy" and (
        not numpy_available() or not entry.obj.vectorizable(params)
    ):
        return SKIPPED
    lanes = entry.obj.batch(list(config["seeds"]), backend=backend, **params)
    return [
        {
            "rounds": lane.rounds,
            "stopped": lane.stopped,
            "inputs": lane.inputs,
            "outputs": lane.outputs,
            "state_keys": lane.state_keys,
        }
        for lane in lanes
    ]


# -- Executor suite --------------------------------------------------------


def serial_executor(**options: Any) -> Callable:
    """Per-config executor over :func:`run_config_serial`."""

    def executor(config: dict[str, Any]) -> list[dict[str, Any]]:
        return run_config_serial(config, **options)

    return executor


def batch_executor(backend: str) -> Callable:
    """Per-config executor over :func:`run_config_batch`."""

    def executor(config: dict[str, Any]):
        return run_config_batch(config, backend)

    return executor


def _grid_specs(configs: list[dict[str, Any]]) -> list[TrialSpec]:
    """Flatten normalized configs into per-seed TrialSpecs, grid order."""
    specs = []
    for config in configs:
        params = tuple(sorted((k, v) for k, v in config.items() if k != "seeds"))
        for seed in config["seeds"]:
            specs.append(TrialSpec(params, seed=seed))
    return specs


def _regroup(configs: list[dict[str, Any]], flat: list[Any]) -> list[list[Any]]:
    """Split a flat per-seed result list back into per-config groups."""
    grouped, index = [], 0
    for config in configs:
        count = len(config["seeds"])
        grouped.append(flat[index : index + count])
        index += count
    return grouped


def workers_executor(workers: int = 4) -> Callable:
    """Grid-mode executor: all (config, seed) lanes through one
    ``run_trials(workers=N)`` pool, results regrouped per config."""

    def executor(configs: list[dict[str, Any]]):
        configs = [normalize_config(config) for config in configs]
        flat = run_trials(differential_trial, _grid_specs(configs), workers=workers)
        return _regroup(configs, flat)

    executor.grid_mode = True
    return executor


def pooled_executor(workers: int = 4, batch: int = 4) -> Callable:
    """Grid-mode executor over the full zero-copy dispatch stack.

    Batched groups fan out over the *persistent* pool (warm workers,
    arenas enabled, guided chunking) via
    :func:`differential_trial_batch` -- the strongest parallel leg:
    any divergence between warm-worker shared-memory state and the
    serial reference fails the harness equality.
    """

    def executor(configs: list[dict[str, Any]]):
        configs = [normalize_config(config) for config in configs]
        flat = run_trials(
            differential_trial,
            _grid_specs(configs),
            workers=workers,
            batch=batch,
            batch_fn=differential_trial_batch,
            pool="persist",
            arenas=True,
        )
        return _regroup(configs, flat)

    executor.grid_mode = True
    return executor


def differential_executors(
    *,
    workers: int | None = 4,
    legacy: bool = True,
    traced: bool = True,
    pooled: int | None = None,
) -> dict[str, Callable]:
    """The standard executor suite, reference (port-major sweep) first.

    ``pooled=B`` appends the persistent-pool batched leg (batch size
    ``B`` over ``workers`` processes, arenas on) -- off by default
    because it spins real worker processes; the fuzz grids turn it on.
    """
    executors: dict[str, Callable] = {"serial-fast": serial_executor()}
    if legacy:
        executors["serial-legacy"] = serial_executor(sweep=False)
    if traced:
        executors["traced"] = serial_executor(traced=True)
        if legacy:
            executors["traced-legacy"] = serial_executor(traced=True, sweep=False)
    executors["batch-python"] = batch_executor("python")
    executors["batch-numpy"] = batch_executor("numpy")
    if workers:
        executors[f"workers-{workers}"] = workers_executor(workers)
    if pooled:
        executors[f"pooled-batch-{pooled}"] = pooled_executor(
            workers or 4, pooled
        )
    return executors


def assert_equivalent_runs(
    grid, executors: dict[str, Callable] | None = None
) -> dict[str, list]:
    """Assert full-state equivalence of every executor on every config.

    ``grid`` is an iterable of config dicts (see
    :func:`normalize_config`); ``executors`` maps name -> executor
    (default: :func:`differential_executors`). The first executor is
    the reference; any divergence fails with the complete config --
    seeds included -- so one paste reproduces it. Returns the
    per-executor results for callers wanting extra assertions.
    """
    configs = [normalize_config(config) for config in grid]
    if executors is None:
        executors = differential_executors()
    names = list(executors)
    if not names:
        raise ValueError("need at least one executor")
    results: dict[str, list] = {}
    for name, executor in executors.items():
        if getattr(executor, "grid_mode", False):
            results[name] = executor(configs)
        else:
            results[name] = [executor(config) for config in configs]
    reference_name = names[0]
    for index, config in enumerate(configs):
        reference = results[reference_name][index]
        assert reference is not SKIPPED, (
            f"reference executor {reference_name!r} cannot skip: {config!r}"
        )
        for name in names[1:]:
            outcome = results[name][index]
            if outcome is SKIPPED:
                continue
            assert outcome == reference, (
                f"executor {name!r} diverged from {reference_name!r}\n"
                f"  config (reproduce with this): {config!r}\n"
                f"  reference: {_divergence(reference, outcome)}"
            )
    return results


def _divergence(reference, outcome) -> str:
    """A compact first-divergence description for assertion messages."""
    if not isinstance(reference, list) or not isinstance(outcome, list):
        return f"{reference!r} != {outcome!r}"
    if len(reference) != len(outcome):
        return f"lane counts differ: {len(reference)} vs {len(outcome)}"
    for lane, (ref, out) in enumerate(zip(reference, outcome)):
        if ref == out:
            continue
        for key in ref:
            if ref.get(key) != out.get(key):
                return (
                    f"lane {lane} field {key!r}: {ref.get(key)!r} != {out.get(key)!r}"
                )
        return f"lane {lane} differs"
    return "equal (?)"
