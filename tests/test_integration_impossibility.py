"""Integration tests: the impossibility results, executed.

Corollary 1 via the model checker and the concrete mobile-omission
adversary; Theorems 9 and 10 via their split constructions. Each test
also confirms the *trace* satisfied the stability property the theorem
says is insufficient -- the violations happen under the claimed
conditions, not because the adversary cheated.
"""

import pytest

from repro.adversary.mobile import MobileOmissionAdversary
from repro.analysis.agreement import cross_group_gap, groupwise_spread
from repro.core.baselines import FloodMinProcess, MajorityVoteProcess
from repro.mc.explorer import BoundedExplorer, mobile_omission_choices
from repro.net.dynadegree import check_dynadegree
from repro.net.ports import identity_ports
from repro.sim.runner import run_consensus
from repro.workloads import (
    dac_degree,
    dbac_degree,
    theorem9_part2_execution,
    theorem9_split_execution,
    theorem10_split_execution,
)


class TestCorollary1:
    """Exact consensus impossible with (1, n-2)-dynaDegree."""

    @pytest.mark.parametrize(
        "factory_name, factory",
        [
            ("floodmin", lambda n: lambda v, x: FloodMinProcess(n, 0, x, v, num_rounds=2)),
            ("majority", lambda n: lambda v, x: MajorityVoteProcess(n, 0, x, v, num_rounds=2)),
        ],
    )
    def test_checker_breaks_every_candidate(self, factory_name, factory):
        n = 3
        explorer = BoundedExplorer(
            n,
            factory(n),
            [0.0, 1.0, 1.0],
            mobile_omission_choices(n),
            horizon=2,
            cache_choices=True,
        )
        violation = explorer.search()
        assert violation is not None, factory_name
        assert violation.kind == "disagreement"
        # Every graph in the witness schedule respects (1, n-2).
        for graph in violation.schedule:
            for v in range(n):
                assert graph.in_degree(v) >= n - 2

    def test_concrete_adversary_scales_to_larger_n(self):
        n = 7
        ports = identity_ports(n)
        inputs = [0.0] + [1.0] * (n - 1)
        procs = {
            v: FloodMinProcess(n, 0, inputs[v], ports.self_port(v))
            for v in range(n)
        }
        report = run_consensus(
            procs,
            MobileOmissionAdversary("block_min"),
            ports,
            epsilon=0.0,
            max_rounds=2 * n,
        )
        assert report.terminated
        assert not report.epsilon_agreement
        # The trace really did satisfy (1, n-2).
        assert report.dynadegree_promise == (1, n - 2)
        assert report.dynadegree_verified is True


class TestTheorem9:
    """(T, floor(n/2)) and n >= 2f+1 are necessary (crash model)."""

    @pytest.mark.parametrize("n", [6, 8, 12])
    def test_degree_one_short_forces_the_dilemma(self, n):
        # Horn 1: the proof's hypothetical terminating algorithm
        # (quorum floor(n/2)) disagrees 0 vs 1.
        eager = run_consensus(**theorem9_split_execution(n=n, seed=n))
        assert eager.terminated and not eager.epsilon_agreement
        groups = {
            "a": frozenset(range(n // 2)),
            "b": frozenset(range(n // 2, n)),
        }
        spreads = groupwise_spread(eager.outputs, groups)
        assert spreads["a"] <= 1e-9 and spreads["b"] <= 1e-9
        assert cross_group_gap(eager.outputs, groups["a"], groups["b"]) >= 1.0 - 1e-9

        # Horn 2: the real DAC (quorum floor(n/2)+1) never terminates.
        stalled = run_consensus(
            **theorem9_split_execution(n=n, seed=n, eager_quorum=False, max_rounds=120)
        )
        assert not stalled.terminated

    def test_trace_satisfies_claimed_degree(self):
        n = 8
        report = run_consensus(**theorem9_split_execution(n=n, seed=1))
        trace = report.trace.dynamic_graph()
        # (1, floor(n/2)-1) holds; (1, floor(n/2)) does not.
        assert check_dynadegree(trace, 1, dac_degree(n) - 1).holds
        assert not check_dynadegree(trace, 1, dac_degree(n)).holds

    def test_part2_n_le_2f_beats_any_window(self):
        # With n = 2f, maximal eventual stability cannot save the
        # algorithm: it decided during the isolation prefix.
        report = run_consensus(**theorem9_part2_execution(n=8, seed=2))
        assert report.terminated
        assert not report.epsilon_agreement
        # After reconnection the trace is (isolation+1, n-1)-stable.
        trace = report.trace.dynamic_graph()
        window = 33  # isolation_rounds + 1
        if len(trace) >= 2 * window:
            assert check_dynadegree(trace, window, 7).holds


class TestTheorem10:
    """(T, floor((n+3f)/2)) and n >= 5f+1 are necessary (Byzantine)."""

    @pytest.mark.parametrize("f", [1, 2])
    def test_degree_one_short_forces_the_dilemma(self, f):
        n = 5 * f + 1
        eager = run_consensus(**theorem10_split_execution(f=f, seed=f))
        assert eager.terminated and not eager.epsilon_agreement

        # Listener groups agree internally, disagree across.
        low_end = (n - f) // 2
        high_start = (n + f) // 2
        listeners_a = frozenset(range(low_end))
        listeners_b = frozenset(range(high_start, n))
        spreads = groupwise_spread(
            eager.outputs, {"a": listeners_a, "b": listeners_b}
        )
        assert spreads["a"] <= 0.05 and spreads["b"] <= 0.05
        assert cross_group_gap(eager.outputs, listeners_a, listeners_b) >= 0.9

        stalled = run_consensus(
            **theorem10_split_execution(f=f, seed=f, eager_quorum=False, max_rounds=120)
        )
        assert not stalled.terminated

    def test_trace_is_exactly_one_below_threshold(self):
        f = 1
        n = 6
        report = run_consensus(**theorem10_split_execution(f=f, seed=3))
        trace = report.trace.dynamic_graph()
        need = dbac_degree(n, f)
        fault_free = sorted(report.outputs)
        assert check_dynadegree(trace, 1, need - 1, fault_free=fault_free).holds
        assert not check_dynadegree(trace, 1, need, fault_free=fault_free).holds

    def test_equivocation_is_undetectable_by_construction(self):
        # The two faces are real honest executions: group A's view of
        # the Byzantine node is a valid input-0 run, group B's a valid
        # input-1 run. We check the faces' states stayed within their
        # pretended worlds.
        ex = theorem10_split_execution(f=1, seed=4)
        plan = ex["fault_plan"]
        report = run_consensus(**ex)
        assert report.terminated
        strategy = plan.byzantine[2]
        assert strategy._face_a.value <= 1.0
        assert strategy._face_b.value >= 0.0
        assert abs(strategy._face_a.value - 0.0) < 0.2
        assert abs(strategy._face_b.value - 1.0) < 0.2
