"""Unit tests for the asymptotic averaging baseline (Sec. II-D cat. ii)."""

import pytest

from repro.adversary.base import StaticAdversary
from repro.adversary.comparative import RootedStarAdversary
from repro.core.asymptotic import AsymptoticAveragingProcess
from repro.net.ports import identity_ports
from repro.sim.messages import StateMessage
from repro.sim.node import Delivery
from repro.sim.runner import run_consensus

from tests.helpers import spread_inputs


class TestProcess:
    def test_never_outputs(self):
        p = AsymptoticAveragingProcess(3, 0, 0.5, 0)
        assert not p.has_output()
        with pytest.raises(RuntimeError, match="never outputs"):
            p.output()

    def test_midpoint_rule(self):
        p = AsymptoticAveragingProcess(3, 0, 0.0, 0)
        p.deliver([
            Delivery(0, StateMessage(0.0, 0)),
            Delivery(1, StateMessage(1.0, 0)),
        ])
        assert p.value == 0.5

    def test_mean_rule(self):
        p = AsymptoticAveragingProcess(3, 0, 0.0, 0, combine="mean")
        p.deliver([
            Delivery(0, StateMessage(0.0, 0)),
            Delivery(1, StateMessage(0.9, 0)),
            Delivery(2, StateMessage(0.3, 0)),
        ])
        assert p.value == pytest.approx(0.4)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="combine"):
            AsymptoticAveragingProcess(3, 0, 0.0, 0, combine="median")

    def test_empty_round_keeps_state(self):
        p = AsymptoticAveragingProcess(3, 0, 0.7, 0)
        p.deliver([])
        assert p.value == 0.7
        assert p.phase == 1


class TestConvergence:
    def test_converges_on_complete_graph(self):
        n = 6
        ports = identity_ports(n)
        inputs = spread_inputs(n)
        procs = {
            v: AsymptoticAveragingProcess(n, 0, inputs[v], v) for v in range(n)
        }
        report = run_consensus(
            procs,
            StaticAdversary(),
            ports,
            epsilon=1e-3,
            stop_mode="oracle",
            max_rounds=50,
        )
        assert report.terminated
        assert report.validity

    def test_converges_under_fixed_rooted_star(self):
        # The Charron-Bost et al. regime: rooted every round suffices
        # for asymptotic averaging (here: everyone is pulled to the
        # root's value), even though DAC would starve.
        n = 6
        ports = identity_ports(n)
        inputs = spread_inputs(n)
        procs = {
            v: AsymptoticAveragingProcess(n, 0, inputs[v], v) for v in range(n)
        }
        report = run_consensus(
            procs,
            RootedStarAdversary("fixed"),
            ports,
            epsilon=1e-3,
            stop_mode="oracle",
            max_rounds=100,
        )
        assert report.terminated
        # Everyone converged to the root's input.
        for value in report.outputs.values():
            assert value == pytest.approx(inputs[0], abs=1e-2)
