"""Tests for both command-line entry points."""

import json

import pytest

from repro.bench.cli import main as bench_main
from repro.cli import main as scenario_main


class TestScenarioCli:
    def test_dac_succeeds(self, capsys):
        rc = scenario_main(["dac", "--n", "5", "--f", "2", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[OK]" in out

    def test_dac_verbose_prints_details(self, capsys):
        rc = scenario_main(["dac", "--n", "5", "-v"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "outputs" in out and "rates" in out

    def test_dbac_succeeds(self, capsys):
        rc = scenario_main(["dbac", "--n", "6", "--f", "1", "--strategy", "extreme"])
        assert rc == 0
        assert "[OK]" in capsys.readouterr().out

    def test_theorem9_reports_expected_violation(self, capsys):
        rc = scenario_main(["theorem9", "--n", "6"])
        out = capsys.readouterr().out
        assert rc == 0  # the violation IS the expected outcome
        assert "[VIOLATION]" in out

    def test_theorem9_plain_stalls(self, capsys):
        rc = scenario_main(["theorem9", "--n", "6", "--plain"])
        assert rc == 0
        assert "terminated=False" in capsys.readouterr().out

    def test_theorem10_reports_expected_violation(self, capsys):
        rc = scenario_main(["theorem10", "--f", "1"])
        assert rc == 0
        assert "[VIOLATION]" in capsys.readouterr().out

    def test_figure1_runs(self, capsys):
        rc = scenario_main(["figure1"])
        assert rc == 0
        assert "[OK]" in capsys.readouterr().out

    def test_save_trace_writes_json(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        rc = scenario_main(["dac", "--n", "5", "--save-trace", str(path)])
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["n"] == 5
        assert payload["rounds"]

    def test_default_f_derived_from_n(self, capsys):
        rc = scenario_main(["dac", "--n", "7"])
        assert rc == 0
        assert "f=3" in capsys.readouterr().out

    def test_sweep_runs_grid(self, capsys):
        rc = scenario_main(
            ["sweep", "--n", "5", "7", "--window", "1", "--repeats", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "4 trials" in out
        assert "DAC rounds to output" in out

    def test_sweep_with_workers(self, capsys):
        rc = scenario_main(
            ["sweep", "--n", "5", "--repeats", "2", "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "workers=2" in out

    def test_sweep_honors_epsilon(self, capsys):
        # A looser tolerance terminates in fewer phases -> fewer rounds.
        scenario_main(["sweep", "--n", "9", "--repeats", "1", "--epsilon", "0.2"])
        loose = capsys.readouterr().out
        scenario_main(["sweep", "--n", "9", "--repeats", "1", "--epsilon", "1e-6"])
        tight = capsys.readouterr().out
        assert "eps=0.2" in loose and "eps=1e-06" in tight
        assert loose != tight

    def test_sweep_rejects_save_trace(self, capsys):
        rc = scenario_main(["sweep", "--n", "5", "--save-trace", "x.json"])
        assert rc == 2
        assert "not supported" in capsys.readouterr().out

    def test_sweep_verbose_prints_records(self, capsys):
        rc = scenario_main(["sweep", "--n", "5", "--repeats", "1", "-v"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "seed=0" in out and "'rounds'" in out


class TestBenchCli:
    def test_list(self, capsys):
        rc = bench_main(["--list"])
        out = capsys.readouterr().out
        assert rc == 0
        for experiment_id in ("F1", "E1", "I4", "X7", "S1"):
            assert experiment_id in out

    def test_single_experiment(self, capsys):
        rc = bench_main(["-e", "F1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out and "Figure 1" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            bench_main(["-e", "Z9"])

    def test_workers_flag_sets_sweep_default(self, capsys):
        from repro.sim.parallel import get_default_workers, set_default_workers

        try:
            rc = bench_main(["--list", "--workers", "2"])
            assert rc == 0
            assert get_default_workers() == 2
        finally:
            set_default_workers(1)
