"""Unit tests for the bounded model checker (Corollary 1's engine)."""

import pytest

from repro.core.baselines import FloodMinProcess, MajorityVoteProcess
from repro.mc.explorer import (
    BoundedExplorer,
    full_graph_choice,
    mobile_omission_choices,
)
from repro.net.graph import DirectedGraph


def floodmin_factory(n, rounds):
    return lambda node, x: FloodMinProcess(n, 0, x, node, num_rounds=rounds)


def majority_factory(n, rounds):
    return lambda node, x: MajorityVoteProcess(n, 0, x, node, num_rounds=rounds)


class TestChoiceGenerators:
    def test_mobile_omission_counts(self):
        n = 3
        graphs = list(mobile_omission_choices(n)(0))
        # n options per receiver (drop one of n-1 senders, or none).
        assert len(graphs) == n**n

    def test_mobile_omission_degree_invariant(self):
        n = 3
        for g in mobile_omission_choices(n)(0):
            for v in range(n):
                assert g.in_degree(v) >= n - 2

    def test_full_graph_choice_single(self):
        graphs = list(full_graph_choice(4)(0))
        assert graphs == [DirectedGraph.complete(4)]


class TestSearch:
    def test_floodmin_breaks_under_mobile_omission(self):
        n = 3
        explorer = BoundedExplorer(
            n,
            floodmin_factory(n, rounds=2),
            [0.0, 1.0, 1.0],
            mobile_omission_choices(n),
            horizon=2,
        )
        violation = explorer.search()
        assert violation is not None
        assert violation.kind == "disagreement"
        assert len(violation.schedule) == 2
        assert 0.0 in violation.outputs and 1.0 in violation.outputs

    def test_majority_breaks_under_mobile_omission(self):
        n = 3
        explorer = BoundedExplorer(
            n,
            majority_factory(n, rounds=2),
            [0.0, 1.0, 1.0],
            mobile_omission_choices(n),
            horizon=2,
        )
        violation = explorer.search()
        assert violation is not None
        assert violation.kind == "disagreement"

    def test_floodmin_safe_on_reliable_graph(self):
        # Sanity: with the complete graph as the only choice, FloodMin
        # with n-1 rounds cannot be broken.
        n = 3
        explorer = BoundedExplorer(
            n,
            floodmin_factory(n, rounds=2),
            [0.0, 1.0, 1.0],
            full_graph_choice(n),
            horizon=2,
        )
        assert explorer.search() is None

    def test_identical_inputs_cannot_disagree(self):
        n = 3
        explorer = BoundedExplorer(
            n,
            floodmin_factory(n, rounds=2),
            [1.0, 1.0, 1.0],
            mobile_omission_choices(n),
            horizon=2,
        )
        assert explorer.search() is None

    def test_memoization_bounds_state_count(self):
        n = 3
        explorer = BoundedExplorer(
            n,
            floodmin_factory(n, rounds=3),
            [0.0, 1.0, 1.0],
            full_graph_choice(n),
            horizon=3,
        )
        explorer.search()
        # One initial state, one successor per round: memoized DFS
        # touches a handful of states, not 27^3.
        assert explorer.states_explored <= 4

    def test_nontermination_flagged(self):
        n = 3

        class Stubborn(FloodMinProcess):
            def has_output(self):
                return False

        explorer = BoundedExplorer(
            n,
            lambda node, x: Stubborn(n, 0, x, node, num_rounds=99),
            [0.0, 1.0, 1.0],
            full_graph_choice(n),
            horizon=2,
        )
        violation = explorer.search()
        assert violation is not None
        assert violation.kind == "non-termination"

    def test_nontermination_can_be_ignored(self):
        n = 3
        explorer = BoundedExplorer(
            n,
            floodmin_factory(n, rounds=5),
            [0.0, 1.0, 1.0],
            full_graph_choice(n),
            horizon=2,  # shorter than the algorithm's budget
            nontermination_is_violation=False,
        )
        assert explorer.search() is None

    def test_input_count_validated(self):
        with pytest.raises(ValueError, match="inputs"):
            BoundedExplorer(
                3,
                floodmin_factory(3, 2),
                [0.0],
                full_graph_choice(3),
                horizon=2,
            )

    def test_violation_str(self):
        v_str = str(
            BoundedExplorer(
                3,
                floodmin_factory(3, 1),
                [0.0, 1.0, 1.0],
                mobile_omission_choices(3),
                horizon=1,
            ).search()
        )
        assert "round" in v_str


class TestOutcomeHistogram:
    def test_histogram_contains_disagreements(self):
        n = 3
        explorer = BoundedExplorer(
            n,
            floodmin_factory(n, rounds=1),
            [0.0, 1.0, 1.0],
            mobile_omission_choices(n),
            horizon=1,
        )
        histogram = explorer.count_outcomes()
        assert histogram  # some execution decided
        kinds = {len(set(outputs)) for outputs in histogram}
        assert 2 in kinds  # at least one disagreement pattern


class TestChoiceCaching:
    def test_stochastic_generators_can_opt_out(self):
        # cache_choices=False must re-invoke the generator per DFS
        # node (the pre-caching contract for streaming generators).
        from repro.core.baselines import FloodMinProcess
        from repro.net.topology import Topology

        calls = []

        def generator(t):
            # Two branches with distinct successors, so depth t+1 is
            # entered from more than one DFS node.
            calls.append(t)
            yield Topology.complete(3)
            yield Topology(3, [(0, 1)])

        explorer = BoundedExplorer(
            3,
            lambda v, x: FloodMinProcess(3, 0, x, v, num_rounds=2),
            [0.0, 1.0, 1.0],
            generator,
            horizon=2,
            cache_choices=False,
            nontermination_is_violation=False,
        )
        explorer.search()
        assert len(calls) > len(set(calls))  # depths revisited, not frozen

    def test_cached_choices_generate_once_per_depth(self):
        from repro.core.baselines import FloodMinProcess
        from repro.net.topology import Topology

        calls = []

        def generator(t):
            calls.append(t)
            yield Topology.complete(3)

        explorer = BoundedExplorer(
            3,
            lambda v, x: FloodMinProcess(3, 0, x, v, num_rounds=2),
            [0.0, 1.0, 1.0],
            generator,
            horizon=2,
            cache_choices=True,
        )
        explorer.search()
        assert len(calls) == len(set(calls))
