"""Unit tests for the probabilistic-adversary analytic model."""

import math

import pytest

from repro.analysis.probabilistic import (
    binomial_tail,
    expected_rounds_for_degree,
    expected_rounds_per_phase,
    predicted_rounds_to_epsilon,
    prob_round_degree,
)


class TestBinomialTail:
    def test_certainties(self):
        assert binomial_tail(5, 0.5, 0) == 1.0
        assert binomial_tail(5, 0.5, 6) == 0.0
        assert binomial_tail(5, 1.0, 5) == pytest.approx(1.0)
        assert binomial_tail(5, 0.0, 1) == 0.0

    def test_symmetry_at_half(self):
        # P[Bin(4, .5) >= 3] = P[Bin(4, .5) <= 1] = (1 + 4) / 16.
        assert binomial_tail(4, 0.5, 3) == pytest.approx(5 / 16)

    def test_monotone_in_p(self):
        tails = [binomial_tail(8, p, 4) for p in (0.2, 0.4, 0.6, 0.8)]
        assert tails == sorted(tails)

    def test_validation(self):
        with pytest.raises(ValueError, match="trials"):
            binomial_tail(-1, 0.5, 0)
        with pytest.raises(ValueError, match="probability"):
            binomial_tail(3, 1.5, 0)


class TestRoundDegree:
    def test_matches_direct_computation(self):
        # n=4: in-links ~ Bin(3, p); P[>= 2] = 3p^2(1-p) + p^3.
        p = 0.4
        expected = 3 * p**2 * (1 - p) + p**3
        assert prob_round_degree(4, p, 2) == pytest.approx(expected)

    def test_expected_rounds_geometric(self):
        q = prob_round_degree(4, 0.4, 2)
        assert expected_rounds_for_degree(4, 0.4, 2) == pytest.approx(1 / q)

    def test_impossible_degree_infinite(self):
        assert expected_rounds_for_degree(4, 0.0, 1) == math.inf


class TestRoundsPerPhase:
    def test_zero_need(self):
        assert expected_rounds_per_phase(5, 0.5, 1) == 0.0

    def test_impossible_quorum_infinite(self):
        assert expected_rounds_per_phase(5, 0.5, 6) == math.inf
        assert expected_rounds_per_phase(5, 0.0, 3) == math.inf

    def test_p_one_is_one_round(self):
        assert expected_rounds_per_phase(5, 1.0, 3) == pytest.approx(1.0)

    def test_monotone_decreasing_in_p(self):
        values = [expected_rounds_per_phase(9, p, 5) for p in (0.2, 0.4, 0.6, 0.9)]
        assert values == sorted(values, reverse=True)

    def test_single_geometric_special_case(self):
        # quorum 2 over n=2: one sender heard with prob p per round; the
        # expectation is exactly 1/p.
        assert expected_rounds_per_phase(2, 0.25, 2) == pytest.approx(4.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError, match="quorum"):
            expected_rounds_per_phase(5, 0.5, 0)


class TestPrediction:
    def test_scales_with_phases(self):
        one = predicted_rounds_to_epsilon(9, 0.5, 5, 1)
        ten = predicted_rounds_to_epsilon(9, 0.5, 5, 10)
        assert ten == pytest.approx(10 * one)
