"""Unit tests for FaultPlan: membership, bounds, per-round queries."""

import pytest

from repro.faults.base import FaultPlan
from repro.faults.byzantine import FixedValueByzantine
from repro.faults.crash import CrashEvent


class TestConstruction:
    def test_fault_free_plan(self):
        plan = FaultPlan.fault_free_plan(5)
        assert plan.num_faulty == 0
        assert plan.fault_free == frozenset(range(5))
        assert plan.non_byzantine == frozenset(range(5))

    def test_membership_sets(self):
        plan = FaultPlan(
            5,
            crashes={1: CrashEvent(1, 3)},
            byzantine={4: FixedValueByzantine(0.0)},
        )
        assert plan.fault_free == frozenset({0, 2, 3})
        assert plan.non_byzantine == frozenset({0, 1, 2, 3})
        assert plan.is_byzantine(4)
        assert not plan.is_byzantine(1)
        assert plan.crash_round(1) == 3
        assert plan.crash_round(0) is None

    def test_node_cannot_be_both(self):
        with pytest.raises(ValueError, match="both crash and Byzantine"):
            FaultPlan(
                3,
                crashes={1: CrashEvent(1, 0)},
                byzantine={1: FixedValueByzantine(0.0)},
            )

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            FaultPlan(3, crashes={5: CrashEvent(5, 0)})
        with pytest.raises(ValueError, match="out of range"):
            FaultPlan(3, byzantine={-1: FixedValueByzantine(0.0)})

    def test_mismatched_crash_key_rejected(self):
        with pytest.raises(ValueError, match="keyed as"):
            FaultPlan(3, crashes={0: CrashEvent(1, 0)})

    def test_bound_validation(self):
        plan = FaultPlan(5, crashes={0: CrashEvent(0, 1), 1: CrashEvent(1, 1)})
        plan.validate_bound(2)
        with pytest.raises(ValueError, match="bound is f=1"):
            plan.validate_bound(1)


class TestPerRoundQueries:
    def test_send_targets(self):
        plan = FaultPlan(3, crashes={1: CrashEvent(1, 2)})
        assert plan.send_targets(0, 0) is None  # healthy
        assert plan.send_targets(1, 1) is None  # not yet crashed
        assert plan.send_targets(1, 2) == frozenset()  # silent

    def test_processes_at(self):
        plan = FaultPlan(3, crashes={1: CrashEvent(1, 2)})
        assert plan.processes_at(1, 1)
        assert not plan.processes_at(1, 2)
        assert plan.processes_at(0, 99)

    def test_live_senders_tracks_crashes(self):
        plan = FaultPlan(3, crashes={2: CrashEvent(2, 1)})
        assert plan.live_senders(0) == frozenset({0, 1, 2})
        assert plan.live_senders(1) == frozenset({0, 1})

    def test_byzantine_always_counted_live(self):
        plan = FaultPlan(3, byzantine={2: FixedValueByzantine(0.0)})
        assert 2 in plan.live_senders(100)

    def test_partial_crash_not_counted_live_at_crash_round(self):
        plan = FaultPlan(
            3, crashes={1: CrashEvent(1, 2, receivers=frozenset({0}))}
        )
        assert 1 in plan.live_senders(1)
        assert 1 not in plan.live_senders(2)
