"""The ``DirectedGraph`` alias's deprecation contract.

Three properties, each checked in a fresh subprocess because the
warning is once-per-*process* state:

1. first use emits exactly one :class:`DeprecationWarning`; every
   later access (any import path: ``repro.net.graph``, ``repro.net``,
   ``repro``) is silent and resolves to the same interned
   ``Topology``;
2. merely importing the packages emits nothing -- the alias is lazy;
3. legacy call sites run warning-clean under
   ``-W error::DeprecationWarning`` once the single pinned alias
   warning has been seen (and that first access raises, once, under
   the error filter if not caught).
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _run(code: str, *python_args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, *python_args, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )


def _check(proc: subprocess.CompletedProcess) -> None:
    assert proc.returncode == 0, f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    assert proc.stdout.strip().endswith("OK"), proc.stdout


def test_warns_exactly_once_per_process_across_all_import_paths():
    _check(_run(
        """
import warnings

with warnings.catch_warnings(record=True) as first:
    warnings.simplefilter("always")
    from repro.net.graph import DirectedGraph
deprecations = [w for w in first if issubclass(w.category, DeprecationWarning)]
assert len(deprecations) == 1, [str(w.message) for w in first]
assert "Topology" in str(deprecations[0].message)

with warnings.catch_warnings(record=True) as later:
    warnings.simplefilter("always")
    from repro.net.graph import DirectedGraph as again
    from repro.net import DirectedGraph as from_net
    import repro
    from_pkg = repro.DirectedGraph
    _ = DirectedGraph(3, [(0, 1)])
assert later == [], [str(w.message) for w in later]

from repro.net.topology import Topology
assert DirectedGraph is again is from_net is from_pkg is Topology
print("OK")
"""
    ))


def test_package_imports_alone_stay_silent():
    _check(_run(
        """
import warnings

with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
    import repro
    import repro.net
    import repro.net.graph
assert not any(
    issubclass(w.category, DeprecationWarning) for w in caught
), [str(w.message) for w in caught]
print("OK")
"""
    ))


def test_legacy_call_sites_run_clean_under_error_filter():
    # -W error::DeprecationWarning for the whole process: after the one
    # pinned alias warning (caught below), any further
    # DeprecationWarning anywhere in the legacy paths would raise.
    _check(_run(
        """
import warnings

with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
    from repro.net.graph import DirectedGraph
assert len(caught) == 1 and issubclass(caught[0].category, DeprecationWarning)

# Legacy construction surface, now under the error filter.
graph = DirectedGraph(4, [(0, 1), (1, 2), (2, 3)])
assert graph.in_neighbors(1) == frozenset({0})
assert DirectedGraph.complete(3) is DirectedGraph.complete(3)
assert DirectedGraph.empty(2).edges == frozenset()

# A legacy end-to-end execution (engine, adversary, runner).
from repro import build_dac_execution, run_consensus
report = run_consensus(**build_dac_execution(n=5, f=2, seed=0))
assert report.correct
print("OK")
""",
        "-W",
        "error::DeprecationWarning",
    ))


def test_unfiltered_first_use_raises_once_then_recovers():
    _check(_run(
        """
try:
    from repro.net.graph import DirectedGraph
except DeprecationWarning:
    pass
else:
    raise AssertionError("first access should raise under the error filter")
from repro.net.graph import DirectedGraph  # second access: warned already
from repro.net.topology import Topology
assert DirectedGraph is Topology
print("OK")
""",
        "-W",
        "error::DeprecationWarning",
    ))
