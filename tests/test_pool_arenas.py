"""Persistent worker pool + shared-memory arena lifecycle tests.

The zero-copy dispatch stack (:mod:`repro.sim.parallel` +
:mod:`repro.sim.arena`) is a pure speed knob, so two properties carry
all the weight:

- **determinism** -- warm-pool batched dispatch returns bit-identical
  results to the serial path, across multiple sweeps over the *same*
  pool, with observer events forwarded in the same order;
- **hygiene** -- shared-memory segments are unlinked on every exit
  path: explicit :func:`close_pool`, a crashed pool, and interpreter
  death by ``KeyboardInterrupt``. ``/dev/shm`` is checked directly,
  not just the registry's own ledger.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import pytest

from repro.bench.sweep import Sweep
from repro.sim import parallel
from repro.sim.arena import arenas_available
from repro.sim.parallel import TrialSpec, close_pool, run_trials
from repro.workloads import run_dac_trial

REPO = Path(__file__).resolve().parent.parent
SHM = Path("/dev/shm")


def _shm_segments(pid: int | None = None) -> list[str]:
    """This process's (or ``pid``'s) arena segments visible to the OS."""
    if not SHM.is_dir():
        return []
    pid = os.getpid() if pid is None else pid
    return sorted(p.name for p in SHM.glob(f"repro_arena_{pid}_*"))


def _dac_specs(seeds, n: int = 9) -> list[TrialSpec]:
    return [TrialSpec((("n", n),), seed=int(s)) for s in seeds]


# -- Determinism ----------------------------------------------------------


def test_warm_pool_reused_across_sweeps_matches_serial():
    """Two batched Sweep.run calls share one warm pool; records match
    a serial sweep record for record."""
    close_pool()
    grid = {"n": [7, 9], "window": [1, 2]}

    serial = Sweep(grid=grid, repeats=3).run(run_dac_trial, workers=1, batch=1)
    first = Sweep(grid=grid, repeats=3).run(run_dac_trial, workers=4, batch=3)
    pool_obj = parallel._pool_executor
    assert pool_obj is not None, "persistent pool was not created"
    second = Sweep(grid=grid, repeats=3).run(run_dac_trial, workers=4, batch=3)
    assert parallel._pool_executor is pool_obj, "pool was not reused warm"

    assert first == serial
    assert second == serial


def test_fresh_pool_and_no_arenas_are_pure_speed_knobs():
    close_pool()
    specs = _dac_specs(range(6))
    serial = run_trials(run_dac_trial, specs, workers=1)
    fresh = run_trials(
        run_dac_trial, specs, workers=2, batch=3, pool="fresh", arenas=False
    )
    assert parallel._pool_executor is None, "fresh mode must not persist a pool"
    persist = run_trials(run_dac_trial, specs, workers=2, batch=3)
    assert fresh == serial
    assert persist == serial


def test_pooled_observer_forwarding_matches_serial():
    """Events recorded inside observed trials replay identically (same
    events, same order) whether trials ran in-process or on the warm
    pool."""
    close_pool()
    specs = [
        TrialSpec((("n", 7), ("observe", True)), seed=s) for s in range(4)
    ]
    serial_events: list = []
    pooled_events: list = []
    serial = run_trials(
        run_dac_trial, specs, workers=1, on_event=serial_events.append
    )
    pooled = run_trials(
        run_dac_trial, specs, workers=4, on_event=pooled_events.append
    )
    assert pooled == serial
    assert serial_events, "observed trials emitted no events"
    assert pooled_events == serial_events


# -- Hygiene --------------------------------------------------------------


@pytest.mark.skipif(not arenas_available(), reason="shared-memory arenas unavailable")
def test_close_pool_unlinks_all_segments():
    close_pool()
    specs = _dac_specs(range(8))
    pooled = run_trials(run_dac_trial, specs, workers=4, batch=4)
    assert parallel.arena_registry().segment_names(), "no tables were published"
    if SHM.is_dir():
        assert _shm_segments(), "published segments not visible in /dev/shm"
    close_pool()
    assert parallel.arena_registry().segment_names() == []
    assert _shm_segments() == []
    assert pooled == run_trials(run_dac_trial, specs, workers=1)


def _crashing_trial(n: int, seed: int) -> None:
    """Module-level so it pickles; kills its worker without cleanup."""
    os._exit(13)


def test_pool_crash_tears_down_pool_and_arenas():
    close_pool()
    if arenas_available():
        run_trials(run_dac_trial, _dac_specs(range(8)), workers=4, batch=4)
        assert parallel.arena_registry().segment_names()
    with pytest.raises(BrokenProcessPool):
        run_trials(_crashing_trial, _dac_specs(range(4), n=5), workers=2)
    assert parallel._pool_executor is None, "crashed pool must be torn down"
    assert parallel.arena_registry().segment_names() == []
    assert _shm_segments() == []
    # The next pooled call starts clean on a rebuilt pool.
    specs = _dac_specs(range(2), n=5)
    assert run_trials(run_dac_trial, specs, workers=2) == run_trials(
        run_dac_trial, specs, workers=1
    )


_INTERRUPT_SCRIPT = """\
import os
from repro.sim import parallel
from repro.sim.parallel import TrialSpec, run_trials
from repro.workloads import run_dac_trial

specs = [TrialSpec((("n", 9),), seed=s) for s in range(8)]
run_trials(run_dac_trial, specs, workers=2, batch=4)
print("PID", os.getpid(), flush=True)
print("SEGS", len(parallel.arena_registry().segment_names()), flush=True)
raise KeyboardInterrupt
"""


@pytest.mark.skipif(not SHM.is_dir(), reason="no /dev/shm to inspect")
def test_keyboard_interrupt_unlinks_segments():
    """An interpreter dying by KeyboardInterrupt still runs the atexit
    teardown: nothing the child published survives it."""
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.run(
        [sys.executable, "-c", _INTERRUPT_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode != 0, "child was expected to die interrupted"
    assert "KeyboardInterrupt" in proc.stderr
    pid_match = re.search(r"^PID (\d+)$", proc.stdout, re.MULTILINE)
    segs_match = re.search(r"^SEGS (\d+)$", proc.stdout, re.MULTILINE)
    assert pid_match and segs_match, proc.stdout + proc.stderr
    if arenas_available():
        assert int(segs_match.group(1)) > 0, "child published no tables"
    assert _shm_segments(pid=int(pid_match.group(1))) == []
