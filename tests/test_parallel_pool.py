"""Pool lifecycle hardening and the dispatch shippability seams.

Regression coverage for three failure modes the service daemon
stresses:

1. the persistent-pool *grow* path must be atomic -- a failing
   replacement constructor leaves the previous pool installed and the
   module state consistent, never a half-torn-down singleton;
2. ``close_pool`` must reach both teardowns (executor and arena
   registry) even when one of them raises, and must tolerate being
   raced against ``get_pool`` from another thread;
3. shippability is checked on the *full dispatched job tuples*
   (manifest included) before anything reaches the pool, and the
   worker-side return path diagnoses unpicklable results/events with
   the offending trial's identity instead of an opaque pool crash.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.sim import parallel
from repro.sim.parallel import (
    TrialSpec,
    _check_returnable,
    _check_shippable,
    _invoke_batch_chunk,
    _invoke_chunk,
    close_pool,
    get_pool,
    record_event,
    run_trials,
)


@pytest.fixture(autouse=True)
def clean_pool():
    close_pool()
    yield
    close_pool()


# -- grow-path atomicity ---------------------------------------------------


class _ExplodingExecutor:
    def __init__(self, *args, **kwargs):
        raise OSError("no more processes")


def test_failed_grow_keeps_the_previous_pool(monkeypatch):
    small = get_pool(1)
    assert parallel._pool_size == 1
    monkeypatch.setattr(parallel, "ProcessPoolExecutor", _ExplodingExecutor)
    with pytest.raises(OSError, match="no more processes"):
        get_pool(4)
    # The old pool survives, consistent with its recorded size...
    assert parallel._pool_executor is small
    assert parallel._pool_size == 1
    monkeypatch.undo()
    # ...and still dispatches work.
    assert small.submit(max, 1, 2).result() == 2
    grown = get_pool(2)
    assert grown is not small
    assert parallel._pool_size == 2


def test_failed_first_creation_leaves_state_clean(monkeypatch):
    monkeypatch.setattr(parallel, "ProcessPoolExecutor", _ExplodingExecutor)
    with pytest.raises(OSError):
        get_pool(2)
    assert parallel._pool_executor is None
    assert parallel._pool_size == 0
    monkeypatch.undo()
    assert isinstance(get_pool(1), ProcessPoolExecutor)


def test_reuse_never_replaces_a_wide_enough_pool():
    wide = get_pool(2)
    assert get_pool(1) is wide
    assert get_pool(2) is wide
    assert parallel._pool_size == 2


# -- close_pool robustness -------------------------------------------------


def test_close_pool_reaches_arena_teardown_when_shutdown_raises(monkeypatch):
    pool = get_pool(1)
    closed = {"registry": False}
    monkeypatch.setattr(
        parallel._arena_registry,
        "close",
        lambda: closed.__setitem__("registry", True),
    )

    def exploding_shutdown(wait=True):
        raise RuntimeError("shutdown interrupted")

    monkeypatch.setattr(pool, "shutdown", exploding_shutdown)
    with pytest.raises(RuntimeError, match="shutdown interrupted"):
        close_pool()
    # The registry teardown still ran and the singleton is cleared, so
    # the next call starts from scratch instead of reusing a zombie.
    assert closed["registry"]
    assert parallel._pool_executor is None
    assert parallel._pool_size == 0


def test_close_pool_registry_failure_does_not_leak_the_executor(monkeypatch):
    pool = get_pool(1)
    monkeypatch.setattr(
        parallel._arena_registry,
        "close",
        lambda: (_ for _ in ()).throw(RuntimeError("segment vanished")),
    )
    with pytest.raises(RuntimeError, match="segment vanished"):
        close_pool()
    # The executor was shut down before the registry failure surfaced.
    assert parallel._pool_executor is None
    with pytest.raises(RuntimeError):
        pool.submit(max, 1, 2)  # "cannot schedule new futures after shutdown"


def test_close_pool_is_idempotent():
    get_pool(1)
    close_pool()
    close_pool()
    assert parallel._pool_executor is None


def test_concurrent_get_and_close_keep_state_consistent():
    errors: list[BaseException] = []
    stop = threading.Event()

    def churn(fn):
        while not stop.is_set():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)
                return

    threads = [
        threading.Thread(target=churn, args=(lambda: get_pool(1),)),
        threading.Thread(target=churn, args=(close_pool,)),
    ]
    for thread in threads:
        thread.start()
    timer = threading.Timer(1.0, stop.set)
    timer.start()
    for thread in threads:
        thread.join()
    timer.cancel()
    assert errors == []
    close_pool()
    assert parallel._pool_executor is None and parallel._pool_size == 0


# -- shippability of full job tuples ---------------------------------------


def _trial(n, seed=0):
    return n * seed


def test_check_shippable_covers_the_manifest_in_job_tuples():
    manifest = {"segment": lambda: None}  # unpicklable manifest stand-in
    jobs = [(manifest, [(_trial, (("n", 3),), (0,), False)])]
    with pytest.raises(ValueError, match="job envelope"):
        _check_shippable(_trial, jobs, count=2)


def test_check_shippable_passes_plain_jobs():
    jobs = [(None, [(_trial, (("n", 3),), (0,), False)])]
    _check_shippable(_trial, jobs, count=2)


def test_unpicklable_params_still_diagnosed_from_run_trials():
    specs = [TrialSpec((("n", 3), ("fn", lambda: None)), seed=s) for s in (0, 1)]
    with pytest.raises(ValueError, match="picklable"):
        run_trials(_trial, specs, workers=2, pool="fresh")


# -- the worker return path ------------------------------------------------


def _records_unpicklable_event(n, seed=0):
    record_event(lambda: None)  # an event that cannot cross processes
    return n * seed


def _records_scalar_event(n, seed=0):
    record_event(("finished", seed))
    return n * seed


def test_return_path_names_the_offending_trial():
    payloads = [(_records_unpicklable_event, TrialSpec((("n", 3),), seed=7), True)]
    with pytest.raises(ValueError) as excinfo:
        _invoke_chunk(payloads)
    message = str(excinfo.value)
    assert "'n': 3" in message and "[7]" in message
    assert "pickled back" in message


def test_return_path_check_skipped_without_forwarding():
    # No on_event, no forwarding: the event is dropped at the source
    # and nothing needs to cross a process boundary.
    payloads = [(_records_unpicklable_event, TrialSpec((("n", 3),), seed=7), False)]
    assert _invoke_chunk(payloads) == [21]


def test_batched_return_path_names_params_and_seeds():
    def batch(n, seeds=()):
        record_event(lambda: None)
        return [n * seed for seed in seeds]

    job = (None, [(batch, (("n", 3),), (1, 2), True)])
    with pytest.raises(ValueError) as excinfo:
        _invoke_batch_chunk(job)
    assert "[1, 2]" in str(excinfo.value)


def test_picklable_events_pass_the_return_check():
    payloads = [(_records_scalar_event, TrialSpec((("n", 3),), seed=2), True)]
    ((result, events),) = _invoke_chunk(payloads)
    assert result == 6
    assert events == [("finished", 2)]


def test_check_returnable_accepts_plain_values():
    _check_returnable({"rounds": 4}, _trial, (("n", 3),), (0,))


def test_forwarding_still_works_end_to_end_over_the_pool():
    seen: list = []
    specs = [TrialSpec((("n", 3),), seed=s) for s in (1, 2, 3)]
    results = run_trials(
        _records_scalar_event, specs, workers=2, pool="fresh", on_event=seen.append
    )
    assert results == [3, 6, 9]
    assert seen == [("finished", 1), ("finished", 2), ("finished", 3)]
