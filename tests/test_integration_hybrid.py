"""Integration tests for the *hybrid* fault model.

The paper's model statement is "up to f nodes may suffer crash or
Byzantine faults" -- mixtures are legal. DBAC must ride out any split
of its f budget between crashed and Byzantine nodes (a crashed node is
strictly weaker than a Byzantine one), and DAC must tolerate crashes
arriving in every pattern the CrashEvent machinery can express.
"""

import pytest

from repro.adversary.constrained import RotatingQuorumAdversary
from repro.core.dac import DACProcess
from repro.core.dbac import DBACProcess
from repro.faults.base import FaultPlan
from repro.faults.byzantine import ExtremeByzantine, PhaseLiarByzantine
from repro.faults.crash import CrashEvent
from repro.net.ports import random_ports
from repro.sim.rng import child_rng, spawn_inputs
from repro.sim.runner import run_consensus
from repro.workloads import dbac_degree


class TestHybridDBAC:
    @pytest.mark.parametrize("crashes, byz", [(1, 1), (2, 0), (0, 2)])
    def test_every_split_of_the_fault_budget(self, crashes, byz):
        n, f = 11, 2
        assert crashes + byz <= f
        ports = random_ports(n, child_rng(71, "ports"))
        inputs = spawn_inputs(71, n)
        crash_events = {
            n - 1 - i: CrashEvent(n - 1 - i, 2 + i) for i in range(crashes)
        }
        byz_nodes = {
            n - 1 - crashes - i: ExtremeByzantine() for i in range(byz)
        }
        plan = FaultPlan(n, crashes=crash_events, byzantine=byz_nodes)
        plan.validate_bound(f)
        procs = {
            v: DBACProcess(n, f, inputs[v], ports.self_port(v), end_phase=7)
            for v in plan.non_byzantine
        }
        report = run_consensus(
            procs,
            RotatingQuorumAdversary(dbac_degree(n, f), selector="nearest"),
            ports,
            epsilon=1e-1,
            f=f,
            fault_plan=plan,
            stop_mode="output",
            max_rounds=400,
        )
        assert report.terminated, report.summary()
        assert report.epsilon_agreement
        # Validity against the fault-free hull.
        honest = [inputs[v] for v in plan.fault_free]
        lo, hi = min(honest), max(honest)
        for v in plan.fault_free:
            assert lo - 1e-9 <= report.outputs[v] <= hi + 1e-9

    def test_crash_plus_phase_liar(self):
        # The nastiest mix: one node dies mid-broadcast, one lies about
        # being far in the future.
        n, f = 11, 2
        ports = random_ports(n, child_rng(73, "ports"))
        inputs = spawn_inputs(73, n)
        plan = FaultPlan(
            n,
            crashes={10: CrashEvent(10, 3, receivers=frozenset({0, 1}))},
            byzantine={9: PhaseLiarByzantine(value=0.0, phase_lead=999)},
        )
        procs = {
            v: DBACProcess(n, f, inputs[v], ports.self_port(v), end_phase=7)
            for v in plan.non_byzantine
        }
        report = run_consensus(
            procs,
            RotatingQuorumAdversary(dbac_degree(n, f)),
            ports,
            epsilon=1e-1,
            f=f,
            fault_plan=plan,
            stop_mode="output",
            max_rounds=400,
        )
        assert report.terminated and report.epsilon_agreement, report.summary()


class TestCrashPatternsDAC:
    @pytest.mark.parametrize(
        "pattern",
        ["all_round_zero", "staggered", "partial_finales", "late"],
    )
    def test_patterns(self, pattern):
        n, f = 9, 4
        ports = random_ports(n, child_rng(79, "ports"))
        inputs = spawn_inputs(79, n)
        victims = list(range(5, 9))
        if pattern == "all_round_zero":
            crashes = {v: CrashEvent(v, 0) for v in victims}
        elif pattern == "staggered":
            crashes = {v: CrashEvent(v, 1 + 2 * i) for i, v in enumerate(victims)}
        elif pattern == "partial_finales":
            crashes = {
                v: CrashEvent(v, 2 + i, receivers=frozenset({0, 1}))
                for i, v in enumerate(victims)
            }
        else:  # late
            crashes = {v: CrashEvent(v, 8) for v in victims}
        plan = FaultPlan(n, crashes=crashes)
        procs = {
            v: DACProcess(n, f, inputs[v], ports.self_port(v), epsilon=1e-3)
            for v in plan.non_byzantine
        }
        report = run_consensus(
            procs,
            RotatingQuorumAdversary(n // 2),
            ports,
            epsilon=1e-3,
            f=f,
            fault_plan=plan,
            max_rounds=400,
        )
        assert report.correct, f"{pattern}: {report.summary()}"
