"""The observer bus, built-in observers, and the read-only contract.

The load-bearing guarantees here:

- attaching observers cannot perturb an execution (full ``state_key``
  equality against the bare differential suite);
- worker processes forward their observer events/summaries back
  bit-identically to a serial run (the ``repro.sim.parallel``
  forwarding contract);
- the batch engines surface per-lane completion through ``on_lane``.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    ConvergenceTracker,
    ConvergenceUpdate,
    EngineAdapter,
    MetricsAggregator,
    ObserverBus,
    PhaseAdvanced,
    ProgressReporter,
    RoundCompleted,
    RunFinished,
    attach_engine,
    consensus_hooks,
    lane_finished,
)
from repro.sim.batch import run_dac_batch
from repro.sim.engine import Engine
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.runner import run_consensus
from repro.workloads import build_dac_execution, run_dac_trial

from tests.helpers import (
    _build_serial,
    _canonical,
    assert_equivalent_runs,
    differential_executors,
    normalize_config,
    serial_executor,
)


def run_observed_dac(bus, n=7, f=2, seed=5):
    """One DAC run with the standard hooks wired onto ``bus``."""
    kwargs = build_dac_execution(n=n, f=f, seed=seed)
    return run_consensus(**kwargs, **consensus_hooks(bus))


# -- the bus ---------------------------------------------------------------


class TestObserverBus:
    def test_typed_subscription_dispatch(self):
        bus = ObserverBus()
        rounds, finishes = [], []
        bus.subscribe(RoundCompleted, rounds.append)
        bus.subscribe(RunFinished, finishes.append)
        event = RoundCompleted(
            round=0, delivered=3, bits=96, live_senders=3,
            spread=1.0, min_phase=0, max_phase=0,
        )
        bus.publish(event)
        bus.publish(RunFinished(rounds=1, stopped=True, spread=0.0))
        assert rounds == [event]
        assert len(finishes) == 1

    def test_attached_observers_see_every_event(self):
        bus = ObserverBus()
        seen = []

        class Probe:
            def on_event(self, event):
                seen.append(event)

        bus.attach(Probe())
        bus.publish(PhaseAdvanced(round=2, phase=1, previous=0))
        bus.publish(RunFinished(rounds=2, stopped=True, spread=0.0))
        assert [type(e) for e in seen] == [PhaseAdvanced, RunFinished]

    def test_attach_requires_on_event(self):
        with pytest.raises(TypeError, match="on_event"):
            ObserverBus().attach(object())

    def test_observers_before_handlers_in_registration_order(self):
        bus = ObserverBus()
        order = []

        class Probe:
            def __init__(self, tag):
                self.tag = tag

            def on_event(self, event):
                order.append(self.tag)

        bus.attach(Probe("a"))
        bus.subscribe(RunFinished, lambda e: order.append("handler"))
        bus.attach(Probe("b"))
        bus.publish(RunFinished(rounds=0, stopped=False, spread=0.0))
        assert order == ["a", "b", "handler"]
        assert len(bus) == 3  # two observers + one typed handler
        assert len(bus.attached) == 2


# -- built-in observers ----------------------------------------------------


class TestMetricsAggregator:
    def test_streaming_totals(self):
        agg = MetricsAggregator()
        for t, (delivered, bits, live) in enumerate([(3, 96, 3), (5, 160, 4)]):
            agg.on_event(
                RoundCompleted(
                    round=t, delivered=delivered, bits=bits,
                    live_senders=live, spread=1.0, min_phase=0, max_phase=0,
                )
            )
        agg.on_event(RunFinished(rounds=2, stopped=True, spread=0.01))
        summary = agg.summary()
        assert summary["rounds"] == 2
        assert summary["delivered"] == 8
        assert summary["bits"] == 256
        assert summary["mean_bits_per_round"] == 128.0
        assert (summary["live_senders_min"], summary["live_senders_max"]) == (3, 4)
        assert summary["mean_live_senders"] == 3.5
        assert summary["finished"] == {
            "rounds": 2, "stopped": True, "spread": 0.01,
        }

    def test_merge_rederives_means_from_totals(self):
        def run_summary(rows):
            agg = MetricsAggregator()
            for t, (delivered, bits, live) in enumerate(rows):
                agg.on_event(
                    RoundCompleted(
                        round=t, delivered=delivered, bits=bits,
                        live_senders=live, spread=1.0, min_phase=0,
                        max_phase=0,
                    )
                )
            return agg.summary()

        a = run_summary([(1, 32, 2)])
        b = run_summary([(4, 128, 4), (4, 128, 4), (4, 128, 4)])
        merged = MetricsAggregator.merge_summaries([a, b])
        assert merged["runs"] == 2
        assert merged["rounds"] == 4
        assert merged["mean_bits_per_round"] == (32 + 3 * 128) / 4
        assert merged["mean_live_senders"] == (2 + 3 * 4) / 4
        # Order-independent: means come from totals, not from runs.
        assert merged == MetricsAggregator.merge_summaries([b, a])

    def test_empty_summary_is_well_defined(self):
        summary = MetricsAggregator().summary()
        assert summary["rounds"] == 0
        assert summary["mean_bits_per_round"] == 0.0
        assert summary["finished"] is None


class TestConvergenceTracker:
    def test_collects_running_ranges(self):
        tracker = ConvergenceTracker()
        tracker.on_event(ConvergenceUpdate(round=0, phase=0, phase_range=1.0, rate=None))
        tracker.on_event(ConvergenceUpdate(round=4, phase=1, phase_range=0.5, rate=0.5))
        tracker.on_event(ConvergenceUpdate(round=9, phase=2, phase_range=0.2, rate=0.4))
        assert tracker.range_series == [1.0, 0.5, 0.2]
        summary = tracker.summary()
        assert summary["phases"] == 3
        assert summary["rates"]["max"] == 0.5
        assert summary["geometric_rate"] is not None


class TestProgressReporter:
    def test_sampled_human_lines_and_jsonl_rows(self, tmp_path):
        stream = io.StringIO()
        jsonl = tmp_path / "progress.jsonl"
        with ProgressReporter(stream=stream, jsonl_path=jsonl, every=2) as rep:
            for t in range(4):
                rep.on_event(
                    RoundCompleted(
                        round=t, delivered=2, bits=64, live_senders=2,
                        spread=0.5, min_phase=0, max_phase=0,
                    )
                )
            rep.on_event(PhaseAdvanced(round=4, phase=1, previous=0))
            rep.on_event(RunFinished(rounds=5, stopped=True, spread=0.001))
        lines = stream.getvalue().splitlines()
        # rounds 0 and 2 sampled; phase + finish always reported
        assert len(lines) == 4
        assert lines[2] == "round 4: phase 0 -> 1"
        rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert [row["event"] for row in rows] == [
            "round", "round", "phase", "finished",
        ]
        assert rows[-1] == {
            "event": "finished", "rounds": 5, "stopped": True, "spread": 0.001,
        }

    def test_every_validated(self):
        with pytest.raises(ValueError, match="every"):
            ProgressReporter(stream=io.StringIO(), every=0)


# -- end-to-end against real runs ------------------------------------------


class TestObservedRuns:
    def test_aggregator_agrees_with_the_report(self):
        bus = ObserverBus()
        agg = MetricsAggregator()
        bus.attach(agg)
        report = run_observed_dac(bus)
        summary = agg.summary()
        assert summary["rounds"] == report.rounds
        assert summary["delivered"] == report.metrics.delivered
        assert summary["bits"] == report.metrics.bits
        assert summary["finished"]["rounds"] == report.rounds
        assert summary["finished"]["stopped"] == report.terminated

    def test_convergence_tracker_tracks_phase_progress(self):
        bus = ObserverBus()
        tracker = ConvergenceTracker()
        bus.attach(tracker)
        report = run_observed_dac(bus)
        assert tracker.summary()["phases"] >= report.max_phase
        final_ranges = [r for r in tracker.range_series if r is not None]
        assert final_ranges and final_ranges[-1] <= 1e-3

    def test_run_finished_carries_the_final_spread(self):
        bus = ObserverBus()
        finishes = []
        bus.subscribe(RunFinished, finishes.append)
        report = run_observed_dac(bus)
        [event] = finishes
        assert event.rounds == report.rounds
        assert event.stopped == report.terminated
        assert event.delivered > 0 and event.bits > 0


# -- non-perturbation: the whole point -------------------------------------


def observed_executor(config):
    """Traced run with a full observer stack attached: must stay
    bit-identical to every bare executor in the differential suite."""
    config = normalize_config(config)
    results = []
    for seed in config["seeds"]:
        kwargs, stop, max_rounds, stop_mode = _build_serial(config, seed)
        engine = Engine(
            kwargs["processes"],
            kwargs["adversary"],
            kwargs["ports"],
            fault_plan=kwargs["fault_plan"],
            f=kwargs["f"],
            seed=kwargs["seed"],
            record_trace=True,
        )
        bus = ObserverBus()
        bus.attach(MetricsAggregator())
        bus.attach(ConvergenceTracker())
        attach_engine(bus, engine)
        result = engine.run(max_rounds, stop_when=stop)
        results.append(_canonical(engine, result, stop_mode))
    return results


class TestNonPerturbation:
    def test_observed_and_traced_runs_match_bare_ones(self):
        grid = [
            {"family": "dac", "n": 5, "seeds": (0, 1)},
            {"family": "dbac", "n": 6, "seed": 2},
            {"family": "mobile", "n": 4, "seed": 3},
        ]
        executors = differential_executors(workers=None)
        executors["traced-observed"] = observed_executor
        assert_equivalent_runs(grid, executors)

    def test_adapter_on_engine_without_fast_path_penalty(self):
        # The observation branch is the engine's only obs coupling:
        # an engine with no sink and no observers must not assemble
        # snapshots at all.
        kwargs = build_dac_execution(n=5, f=2, seed=0)
        engine = Engine(
            kwargs["processes"],
            kwargs["adversary"],
            kwargs["ports"],
            fault_plan=kwargs["fault_plan"],
            f=kwargs["f"],
            seed=kwargs["seed"],
            record_trace=False,
        )
        assert engine.trace is None and engine.observers == []
        engine.run(5)


# -- worker forwarding -----------------------------------------------------


class TestWorkerForwarding:
    def test_pool_events_and_summaries_match_serial(self):
        specs = [
            TrialSpec((("n", 5), ("observe", True)), seed=seed)
            for seed in range(6)
        ]
        serial_events, pool_events = [], []
        serial = run_trials(
            run_dac_trial, specs, workers=1, on_event=serial_events.append
        )
        pooled = run_trials(
            run_dac_trial, specs, workers=4, on_event=pool_events.append
        )
        assert pooled == serial
        assert all("metrics" in summary for summary in pooled)
        assert pool_events == serial_events
        assert [type(e) for e in pool_events] == [RunFinished] * 6

    def test_events_dropped_without_a_collector(self):
        from repro.sim.parallel import record_event

        assert record_event(RunFinished(rounds=1, stopped=True, spread=0.0)) is False

    def test_observe_false_forwards_nothing(self):
        specs = [TrialSpec((("n", 5),), seed=0)]
        events = []
        run_trials(run_dac_trial, specs, workers=1, on_event=events.append)
        assert events == []


# -- batch lanes -----------------------------------------------------------


class TestBatchLaneEvents:
    def test_on_lane_publishes_per_lane_run_finished(self):
        bus = ObserverBus()
        finishes = []
        bus.subscribe(RunFinished, finishes.append)
        lanes = run_dac_batch(
            5,
            2,
            [0, 1, 2],
            backend="python",
            on_lane=lambda lane: lane_finished(bus, lane),
        )
        assert [e.seed for e in finishes] == [0, 1, 2]
        assert [e.rounds for e in finishes] == [lane.rounds for lane in lanes]
        assert [e.stopped for e in finishes] == [lane.stopped for lane in lanes]

    def test_on_lane_matches_serial_run_finished(self):
        # The batch lane event must agree with the serial engine's own
        # RunFinished for the same seed.
        bus = ObserverBus()
        batch_events = []
        bus.subscribe(RunFinished, batch_events.append)
        run_dac_batch(
            5, 2, [9], backend="python",
            on_lane=lambda lane: lane_finished(bus, lane),
        )
        serial = serial_executor()({"family": "dac", "n": 5, "seed": 9})
        [event] = batch_events
        assert event.rounds == serial[0]["rounds"]
        assert event.stopped == serial[0]["stopped"]
