"""Tests for the picklable Byzantine/mobile fault-model trial family.

``run_byz_trial`` is the comparative-grid counterpart of
``run_dac_trial``: module-level, picklable, batched via an attached
``batch_fn``, so Byzantine and mobile-omission sweeps parallelize
under ``workers=N`` / ``--batch`` exactly like the DAC grids.
"""

import pickle

import pytest

from repro.bench.sweep import Sweep
from repro.workloads import (
    run_byz_trial,
    run_byz_trial_batch,
    run_dbac_trial,
    run_dbac_trial_batch,
)


class TestRunByzTrial:
    def test_quorum_adversary_matches_dbac_trial(self):
        kwargs = dict(n=6, f=1, window=1, strategy="extreme", max_rounds=3000, seed=4)
        assert run_byz_trial(adversary="quorum", **kwargs) == run_dbac_trial(**kwargs)

    def test_mobile_modes_run_fault_free_dac(self):
        for mode in ("none", "rotate", "block_min"):
            summary = run_byz_trial(
                6, adversary=f"mobile-{mode}", max_rounds=500, seed=1
            )
            assert set(summary) == {"rounds", "spread", "terminated", "correct"}
            assert summary["terminated"]
            # (1, n-2) still satisfies DAC's floor(n/2) needs at n=6.
            assert summary["correct"]

    def test_unknown_adversary_rejected(self):
        with pytest.raises(ValueError, match="unknown adversary"):
            run_byz_trial(6, adversary="chaotic")
        with pytest.raises(ValueError, match="unknown mobile mode"):
            run_byz_trial(6, adversary="mobile-sideways")

    def test_mobile_is_fault_free_only(self):
        with pytest.raises(ValueError, match="fault-free"):
            run_byz_trial(6, f=1, adversary="mobile-none")

    def test_trial_and_batch_fn_are_picklable(self):
        pickle.dumps(run_byz_trial)
        pickle.dumps(run_byz_trial.batch_fn)
        pickle.dumps(run_dbac_trial.batch_fn)


class TestBatchedEquivalence:
    def test_batch_fn_returns_per_seed_results_in_order(self):
        seeds = [3, 1, 8]
        batched = run_byz_trial_batch(
            seeds=seeds, n=6, adversary="mobile-rotate", max_rounds=300
        )
        serial = [
            run_byz_trial(6, adversary="mobile-rotate", max_rounds=300, seed=s)
            for s in seeds
        ]
        assert batched == serial

    def test_dbac_batch_fn_matches_serial(self):
        seeds = [0, 5]
        batched = run_dbac_trial_batch(seeds=seeds, n=6, f=1, max_rounds=3000)
        serial = [run_dbac_trial(n=6, f=1, max_rounds=3000, seed=s) for s in seeds]
        assert batched == serial

    def test_sweep_batch_is_a_pure_speed_knob(self):
        grid = {"n": [6], "adversary": ["quorum", "mobile-block_min"]}
        plain = Sweep(grid=grid, repeats=3)
        plain.run(run_byz_trial, workers=1, batch=1)
        grouped = Sweep(grid=grid, repeats=3)
        grouped.run(run_byz_trial, workers=1, batch=3)
        assert grouped.records == plain.records

    def test_sweep_workers_fan_out(self):
        grid = {"n": [6], "adversary": ["mobile-rotate"]}
        serial = Sweep(grid=grid, repeats=4)
        serial.run(run_byz_trial, workers=1)
        fanned = Sweep(grid=grid, repeats=4)
        fanned.run(run_byz_trial, workers=2, batch=2)
        assert fanned.records == serial.records
