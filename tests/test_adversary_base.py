"""Unit tests for the adversary base classes and trivial instances."""

import pytest

from repro.adversary.base import ScheduleAdversary, StaticAdversary
from repro.faults.base import FaultPlan
from repro.net.dynamic import EdgeSchedule
from repro.net.graph import DirectedGraph
from repro.sim.rng import child_rng


def setup(adversary, n):
    adversary.setup(n, FaultPlan.fault_free_plan(n), child_rng(0, "adv"))
    return adversary


class TestStaticAdversary:
    def test_defaults_to_complete(self):
        adv = setup(StaticAdversary(), 4)
        assert adv.choose(0, None) == DirectedGraph.complete(4)
        assert adv.promised_dynadegree() == (1, 3)

    def test_custom_graph(self):
        ring = DirectedGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        adv = setup(StaticAdversary(ring), 4)
        assert adv.choose(7, None) == ring
        assert adv.promised_dynadegree() == (1, 1)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="engine has n=5"):
            setup(StaticAdversary(DirectedGraph.complete(4)), 5)

    def test_no_promise_when_someone_hears_nobody(self):
        lonely = DirectedGraph(3, [(0, 1)])
        adv = setup(StaticAdversary(lonely), 3)
        assert adv.promised_dynadegree() is None


class TestScheduleAdversary:
    def test_plays_back_schedule(self):
        sched = EdgeSchedule.from_table(3, [[(0, 1)], [(1, 2)]])
        adv = setup(ScheduleAdversary(sched), 3)
        assert set(adv.choose(0, None).edges) == {(0, 1)}
        assert set(adv.choose(1, None).edges) == {(1, 2)}
        assert set(adv.choose(2, None).edges) == {(0, 1)}

    def test_promise_passthrough(self):
        sched = EdgeSchedule.from_table(3, [[(0, 1)]])
        adv = ScheduleAdversary(sched, promise=(2, 1))
        assert adv.promised_dynadegree() == (2, 1)

    def test_size_mismatch_rejected(self):
        sched = EdgeSchedule.from_table(3, [[(0, 1)]])
        with pytest.raises(ValueError, match="engine has n=4"):
            setup(ScheduleAdversary(sched), 4)
