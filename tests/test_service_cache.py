"""The content-addressed result cache: keys, counters, persistence.

The load-bearing property is cache-key identity: any two semantically
identical specs -- defaults elided vs spelled out, DSL vs JSON,
sections reordered, differently seeded -- must map onto one
``(scenario_key, seed)`` entry, because the canonical spec form is a
parse/resolve/encode fixpoint. The persistence tier follows the
trace-v3 recovery contract: a truncated tail is survivable, mid-file
corruption is not.
"""

from __future__ import annotations

import json

import pytest

from repro.scenario import resolve
from repro.service.cache import ResultCache, cache_key, scenario_key

SPEC = "algorithm: dac@1(n=6); rounds: 40"
RESPELLED = "algorithm: dac@1(epsilon=1e-3, n=6); seed: 9; rounds: 40"


# -- key identity ----------------------------------------------------------


def test_scenario_key_is_spelling_independent():
    assert scenario_key(resolve(SPEC)) == scenario_key(resolve(RESPELLED))


def test_scenario_key_ignores_the_spec_seed():
    with_seed = resolve("algorithm: dac@1(n=6); rounds: 40; seed: 123")
    assert scenario_key(resolve(SPEC)) == scenario_key(with_seed)


def test_scenario_key_distinguishes_real_parameter_changes():
    assert scenario_key(resolve(SPEC)) != scenario_key(
        resolve("algorithm: dac@1(n=7); rounds: 40")
    )


def test_cache_key_carries_the_trial_seed():
    resolved = resolve(SPEC)
    assert cache_key(resolved, 3) == (scenario_key(resolved), 3)
    assert cache_key(resolved, 3) != cache_key(resolved, 4)


def test_hash_equal_spellings_share_one_entry():
    cache = ResultCache()
    cache.put(cache_key(resolve(SPEC), 1), {"rounds": 10})
    assert cache.get(cache_key(resolve(RESPELLED), 1)) == {"rounds": 10}
    assert (cache.hits, cache.misses) == (1, 0)


# -- counters --------------------------------------------------------------


def test_get_counts_hits_and_misses_peek_does_not():
    cache = ResultCache()
    key = ("abc", 0)
    assert cache.get(key) is None
    cache.put(key, {"rounds": 1})
    assert cache.get(key) == {"rounds": 1}
    assert cache.peek(("missing", 0)) is None
    assert cache.stats() == {
        "entries": 1,
        "scenarios": 0,
        "hits": 1,
        "misses": 1,
        "stores": 1,
    }


# -- persistence -----------------------------------------------------------


def test_persistence_round_trip_after_restart(tmp_path):
    path = tmp_path / "cache.jsonl"
    spec_dict = resolve(SPEC).canonical_spec().with_seed(0).to_dict()
    with ResultCache(path) as cache:
        key = cache_key(resolve(SPEC), 7)
        cache.put(key, {"rounds": 12, "spread": 0.0}, spec=spec_dict)
        cache.put((key[0], 8), {"rounds": 13, "spread": 0.0})
    with ResultCache(path) as reborn:
        assert len(reborn) == 2
        assert reborn.peek(key) == {"rounds": 12, "spread": 0.0}
        assert reborn.peek((key[0], 8)) == {"rounds": 13, "spread": 0.0}
        assert reborn.spec_for(key[0]) == spec_dict
        # And the reopened cache keeps appending to the same file.
        reborn.put((key[0], 9), {"rounds": 14, "spread": 0.0})
    with ResultCache(path) as third:
        assert len(third) == 3


def test_truncated_tail_is_recovered(tmp_path):
    path = tmp_path / "cache.jsonl"
    with ResultCache(path) as cache:
        cache.put(("scenario", 0), {"rounds": 1})
        cache.put(("scenario", 1), {"rounds": 2})
    with path.open("a") as handle:
        handle.write('{"key": ["scenario", 2], "resu')  # killed mid-append
    with ResultCache(path) as reborn:
        assert len(reborn) == 2
        assert reborn.peek(("scenario", 2)) is None


def test_tail_with_uncoercible_key_is_recovered(tmp_path):
    # The final line can parse as JSON yet still be a torn append --
    # e.g. a seed that is not int-coercible. That is the same
    # at-most-one-lost-entry tail, not mid-file corruption.
    path = tmp_path / "cache.jsonl"
    with ResultCache(path) as cache:
        cache.put(("scenario", 0), {"rounds": 1})
    with path.open("a") as handle:
        handle.write('{"key": ["scenario", [1]], "result": {}}\n')
    with ResultCache(path) as reborn:
        assert len(reborn) == 1
        assert reborn.peek(("scenario", 0)) == {"rounds": 1}


def test_mid_file_uncoercible_key_raises(tmp_path):
    path = tmp_path / "cache.jsonl"
    with ResultCache(path) as cache:
        cache.put(("scenario", 0), {"rounds": 1})
    lines = path.read_text().splitlines()
    lines.insert(1, '{"key": ["scenario", [1]], "result": {}}')
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="corrupt cache entry on line 2"):
        ResultCache(path)


def test_mid_file_corruption_raises(tmp_path):
    path = tmp_path / "cache.jsonl"
    with ResultCache(path) as cache:
        cache.put(("scenario", 0), {"rounds": 1})
    lines = path.read_text().splitlines()
    lines.insert(1, "not json at all")
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="corrupt cache entry on line 2"):
        ResultCache(path)


def test_foreign_file_is_rejected(tmp_path):
    path = tmp_path / "cache.jsonl"
    path.write_text(json.dumps({"version": 3, "kind": "trace"}) + "\n")
    with pytest.raises(ValueError, match="not a version-1 service cache"):
        ResultCache(path)


def test_in_memory_cache_survives_close():
    cache = ResultCache()
    cache.put(("scenario", 0), {"rounds": 1})
    cache.close()
    assert cache.peek(("scenario", 0)) == {"rounds": 1}
