"""Unit tests for the phase math (Equations 2 and 6, rate bounds)."""

import math

import pytest

from repro.core.phases import (
    dac_convergence_rate,
    dac_end_phase,
    dbac_convergence_rate,
    dbac_end_phase,
    measured_phases_to_epsilon,
    rounds_upper_bound,
)


class TestRates:
    def test_dac_rate_is_half(self):
        assert dac_convergence_rate() == 0.5

    def test_dbac_rate_formula(self):
        assert dbac_convergence_rate(1) == 0.5
        assert dbac_convergence_rate(2) == 0.75
        assert dbac_convergence_rate(10) == pytest.approx(1 - 2**-10)

    def test_dbac_rate_validation(self):
        with pytest.raises(ValueError):
            dbac_convergence_rate(0)


class TestDacEndPhase:
    def test_equation2_values(self):
        # p_end = log2(1/eps) for unit initial range.
        assert dac_end_phase(0.5) == 1
        assert dac_end_phase(0.25) == 2
        assert dac_end_phase(1e-3) == 10  # 2^-10 ~ 9.77e-4 <= 1e-3

    def test_guarantee_holds(self):
        for eps in (0.3, 0.1, 1e-2, 1e-5):
            p = dac_end_phase(eps)
            assert 0.5**p <= eps
            if p > 0:
                assert 0.5 ** (p - 1) > eps

    def test_wide_initial_range(self):
        assert dac_end_phase(0.5, initial_range=4.0) == 3

    def test_epsilon_covering_range_means_zero_phases(self):
        assert dac_end_phase(1.0) == 0
        assert dac_end_phase(2.0, initial_range=1.5) == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            dac_end_phase(0.0)


class TestDbacEndPhase:
    def test_equation6_guarantee(self):
        for n in (2, 5, 8):
            rate = 1 - 2.0**-n
            p = dbac_end_phase(0.01, n)
            assert rate**p <= 0.01

    def test_matches_formula(self):
        n, eps = 6, 1e-2
        expected = math.ceil(math.log(eps) / math.log(1 - 2.0**-n))
        assert dbac_end_phase(eps, n) == expected

    def test_grows_exponentially_in_n(self):
        assert dbac_end_phase(0.1, 10) > 100 * dbac_end_phase(0.1, 3)

    def test_zero_when_epsilon_covers_range(self):
        assert dbac_end_phase(1.5, 5) == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            dbac_end_phase(-0.1, 4)


class TestRoundsBound:
    def test_product(self):
        assert rounds_upper_bound(3, 10) == 30
        assert rounds_upper_bound(1, 0) == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="T must be >= 1"):
            rounds_upper_bound(0, 5)
        with pytest.raises(ValueError, match="non-negative"):
            rounds_upper_bound(1, -1)


class TestMeasuredPhases:
    def test_finds_first_phase_within_epsilon(self):
        series = [1.0, 0.5, 0.25, 0.1, 0.01]
        assert measured_phases_to_epsilon(series, 0.25) == 2
        assert measured_phases_to_epsilon(series, 1.0) == 0

    def test_none_when_never_reached(self):
        assert measured_phases_to_epsilon([1.0, 0.9], 0.5) is None
