"""Docs hygiene inside tier-1: dead links and doctest-checked examples.

CI runs the same two checks as standalone steps
(``tools/check_docs.py`` and ``python -m doctest``); running them here
too means an ordinary ``pytest`` catches a dead link or a drifted
docstring example without any CI round-trip.
"""

import doctest
import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

# The public-API modules whose docstrings carry executable examples
# (the PR 4 docstring pass): batching, the parallel layer, and the
# picklable trial functions.
DOCTEST_MODULES = ["repro.sim.batch", "repro.sim.parallel", "repro.workloads"]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_have_no_dead_links():
    checker = _load_checker()
    assert checker.dead_links(REPO_ROOT) == []


def test_docs_checker_covers_the_docs_site():
    checker = _load_checker()
    names = {path.name for path in checker.doc_files(REPO_ROOT)}
    assert {"index.md", "batching.md", "scaling.md", "topology.md"} <= names


def test_docs_checker_flags_a_dead_link(tmp_path):
    checker = _load_checker()
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "a.md").write_text(
        "[ok](b.md) [anchored](b.md#sec) [ext](https://example.com) "
        "[self](#here) [broken](missing.md)"
    )
    (docs / "b.md").write_text("hello")
    assert checker.dead_links(tmp_path) == ["docs/a.md: missing.md"]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_docstring_examples_execute(module_name):
    module = __import__(module_name, fromlist=["_"])
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module_name} lost its doctest examples"
    assert result.failed == 0


def test_quickstart_commands_reference_real_entry_points():
    # index.md's quickstart names modules and scripts; keep it honest.
    index = (REPO_ROOT / "docs" / "index.md").read_text()
    for entry in ("repro.cli", "repro.bench.cli", "examples/"):
        assert entry in index
    for script in ("quickstart.py", "batched_sweep.py", "batched_dbac_grid.py"):
        assert script in index
        assert (REPO_ROOT / "examples" / script).exists(), script


def test_checker_cli_exits_zero_on_this_repo(capsys):
    checker = _load_checker()
    assert checker.main([str(REPO_ROOT)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out
