# lint-corpus-module: repro.core.widget
"""Known-good twin: explicitly seeded, injected random.Random."""
import random


def sample(items, rng: random.Random):
    rng.shuffle(items)
    return rng.choice(items)


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)  # explicit seed: fine
