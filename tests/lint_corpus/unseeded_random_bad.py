# lint-corpus-module: repro.core.widget
"""Known-bad: ambient module-level RNG state."""
import random

from random import shuffle  # pulls module-level state in by name


def sample(items):
    random.shuffle(items)  # mutates the shared module RNG
    pick = random.choice(items)
    rng = random.Random()  # unseeded: OS entropy
    shuffle(items)
    return pick, rng.random()
