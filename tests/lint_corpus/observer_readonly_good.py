# lint-corpus-module: repro.obs.widget
"""Known-good: read-only observation plus the sanctioned seams."""


def attach(bus, engine):
    engine.observers.append(bus.publish)  # the registration seam


def on_round(engine, snapshot):
    values = [float(state["value"]) for state in snapshot.states.values()]
    spread = (max(values) - min(values)) if values else 0.0
    trimmed = sorted(values)[1:-1]  # locally constructed: ours to mutate
    trimmed.append(spread)
    return spread


class Collector:
    """Observer state lives on the observer, never on the engine."""

    def __init__(self):
        self.rounds = 0
        self.spreads = []

    def on_event(self, event):
        self.rounds += 1
        self.spreads.append(float(event.spread))
