# lint-corpus-module: repro.core.widget
"""Known-good twin: core speaks the model vocabulary; typing-only
imports of higher layers are free."""
from typing import TYPE_CHECKING

from repro.core.dac import DACProcess
from repro.sim.messages import StateMessage  # model carve-out: below core
from repro.sim.node import Delivery

if TYPE_CHECKING:  # typing-only: no runtime dependency
    from repro.sim.engine import EngineView


def describe(view: "EngineView"):
    return DACProcess, StateMessage, Delivery, view
