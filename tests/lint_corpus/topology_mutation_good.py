# lint-corpus-module: repro.adversary.widget
"""Known-good twin: derive new instances; use the sanctioned hook."""
from repro.net.topology import Topology


def widen(topo: Topology, other: Topology) -> Topology:
    return topo.union(other)  # derivation returns a new interned value


def drop_crashed(topo: Topology, crashed) -> Topology:
    return topo.without_sources(crashed)


def cache_plan(topo: Topology, token, plan) -> None:
    topo.set_routing_plan(token, plan)  # the documented one-slot hook
