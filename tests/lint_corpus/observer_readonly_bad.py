# lint-corpus-module: repro.obs.widget
"""Known-bad: observers reaching into the simulation they watch."""


def on_round(engine, snapshot):
    engine.current = 0  # attribute write on the observed engine
    engine.run_round()  # driving the simulation forward
    states = snapshot.states
    states[0] = {"value": 0.0}  # item write through an alias
    setattr(engine, "seed", 1)  # setattr on an observed value


def on_finish(engine, result):
    engine.fault_plan.crashes.update({1: 2})  # container mutator chain
    engine.trace.record(result)  # recording is the engine's business
