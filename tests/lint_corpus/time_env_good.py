# lint-corpus-module: repro.sim.widget
"""Known-good twin: time/config flow in as explicit parameters."""
import os


def stamp_round(record, at: float, salt: str, mode: str = "fast"):
    record["at"] = at
    record["host_salt"] = salt
    record["mode"] = mode
    return record


def pool_width() -> int:
    return os.cpu_count() or 1  # capacity query, not simulation state
