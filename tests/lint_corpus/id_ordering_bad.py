# lint-corpus-module: repro.core.widget
"""Known-bad: ordering values by process-local identity."""


def stable_order(items):
    return sorted(items, key=id)


def pick_first(a, b):
    if id(a) < id(b):  # identity comparison as a tiebreak
        return a
    return b


def hash_order(items):
    return sorted(items, key=lambda item: hash(item))
