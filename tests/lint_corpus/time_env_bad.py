# lint-corpus-module: repro.sim.widget
"""Known-bad: wall clock / environment reads in a deterministic layer."""
import os
import time


def stamp_round(record):
    record["at"] = time.time()
    record["t0"] = time.perf_counter()
    record["host_salt"] = os.environ["SALT"]
    record["mode"] = os.getenv("MODE", "fast")
    return record
