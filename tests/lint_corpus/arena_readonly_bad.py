# lint-corpus-module: repro.bench.widget
"""Known-bad: writes through read-only shared arena table views."""
from repro.sim.arena import delivered_table


def patch_diagonal(topology, live):
    table = delivered_table(topology)
    table[0, 0] = True  # subscript write into the shared view
    table[live, live] |= True  # in-place operator through the view
    return table


def scrub(topology):
    table = delivered_table(topology)
    table.fill(False)  # mutating method on the shared view
    table.flags.writeable = True  # un-freezing the view is a write too
    return table
