# lint-corpus-module: repro.core.widget
"""Known-bad: a core-layer module reaching up the stack."""
from repro.sim.engine import Engine  # core may not import the engine

import repro.bench  # nor the bench layer


def run(processes):
    return Engine, repro.bench, processes
