# lint-corpus-module: repro.core.widget
"""Known-good twin: sorted iteration and membership-only set use."""


def first_pass(items):
    for x in sorted({3, 1, 2}):
        items.append(x)
    vals = set(items)
    squared = [v * v for v in sorted(vals)]
    return squared


def materialize(items):
    return sorted(frozenset(items))


def merged(a, b):
    return [x for x in sorted(set(a) | set(b))]


def membership_only(items, banned):
    drop = set(banned)
    return [x for x in items if x not in drop]  # never iterated: fine
