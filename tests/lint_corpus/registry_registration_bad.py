# lint-corpus-module: repro.families.widget
"""Known-bad: late or computed scenario-registry registrations."""
from repro.scenario.registry import (
    AlgorithmFamily,
    declare_adversary,
    declare_network,
    register_algorithm,
)

WIDGET = "widget"
VERSION = 2

declare_network(WIDGET)  # computed name: invisible to grep and dedup
declare_adversary("gremlin", version=VERSION)  # computed version


def install():
    # Buried registration: runs late, twice, or never.
    declare_adversary("late-gremlin")

    @register_algorithm("widget")  # still inside the function
    class WidgetFamily(AlgorithmFamily):
        pass

    return WidgetFamily
