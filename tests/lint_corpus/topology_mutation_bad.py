# lint-corpus-module: repro.adversary.widget
"""Known-bad: attribute writes on frozen, interned Topology values."""
from repro.net.topology import Topology


def tag(topo: Topology, label: str):
    topo.label = label  # annotated parameter: known Topology
    return topo


def build(n: int):
    graph = Topology(n, [(0, 1)])
    graph.round_hint = 0  # factory-call result: known Topology
    Topology.complete(n).salt = 3  # write straight onto a factory result
    return graph


def sneak(topo: Topology):
    setattr(topo, "cache", {})
