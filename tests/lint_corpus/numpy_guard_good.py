# lint-corpus-module: repro.sim.batch
"""Known-good twin: the batch kernel's guarded optional import."""
try:  # numpy is an optional extra
    import numpy as _np
except ImportError:
    _np = None


def backend() -> str:
    return "numpy" if _np is not None else "python"
