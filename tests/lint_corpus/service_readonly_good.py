# lint-corpus-module: repro.service.widget
"""Known-good: orchestration through the sanctioned seams only."""

import asyncio
import json

from repro.scenario import resolve  # the resolution seam
from repro.service.cache import ResultCache  # the service's own package
from repro.sim.parallel import TrialSpec, run_trials  # the dispatch seam


def handle(spec, seeds, cache: ResultCache):
    resolved = resolve(spec)
    params = tuple(sorted(resolved.trial_kwargs().items()))
    pending = [TrialSpec(params, seed=seed) for seed in seeds]
    results = run_trials(resolved.trial_fn, pending, workers=2)
    payload = [json.loads(json.dumps(result)) for result in results]
    return asyncio.gather(*[]), payload
