# lint-corpus-module: repro.families.widget
"""Known-good: import-time, literal registrations in the owning module."""
from repro.scenario.registry import (
    AlgorithmFamily,
    ParamSpec,
    declare_adversary,
    register_algorithm,
)

declare_adversary(
    "gremlin",
    version=1,
    params=(ParamSpec("strength", "int", default=1),),
)


@register_algorithm("widget", version=1)
class WidgetFamily(AlgorithmFamily):
    """A module-level family with literal name and version."""

    params = (ParamSpec("n", "int"),)

    def build(self, *, seed, **params):
        return {"seed": seed, **params}
