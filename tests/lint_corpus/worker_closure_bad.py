# lint-corpus-module: repro.bench.widget
"""Known-bad: unpicklable functions handed to process-pool calls."""
from repro.workloads import run_dac_trial


def comparative(sweep):
    def local_trial(**kwargs):  # nested: dies in pickle
        return 0

    sweep.run(local_trial, workers=4)
    sweep.run(lambda **kwargs: 0, workers=2)
    sweep.run(lambda **kwargs: 0, pool="persist")  # pool dispatch: same pickle wall


def attach():
    run_dac_trial.batch_fn = lambda seeds, **kw: [0 for _ in seeds]
