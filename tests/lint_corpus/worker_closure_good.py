# lint-corpus-module: repro.bench.widget
"""Known-good twin: module-level trials; lambdas stay serial."""
from repro.workloads import run_dac_trial, run_dac_trial_batch


def module_trial(**kwargs):
    return 0


def comparative(sweep):
    sweep.run(module_trial, workers=4)  # module-level: pickles fine
    sweep.run(lambda **kwargs: 0, workers=1)  # serial path: no pickling
    sweep.run(module_trial, pool="persist")  # pool dispatch, picklable trial
    sweep.run(lambda **kwargs: 0, workers=1, pool="fresh")  # serial wins over pool


def attach():
    run_dac_trial.batch_fn = run_dac_trial_batch  # module-level batch form
