# lint-corpus-module: repro.core.widget
"""Known-good twin: order by value, compare by identity only for 'is'."""


def stable_order(items):
    return sorted(items, key=lambda item: item.value)


def pick_first(a, b):
    if a is b:  # identity *equality* is deterministic
        return a
    return min(a, b)


def memo_lookup(table, value):
    return table.get(id(value))  # identity as a memo key, never ordered
