# lint-corpus-module: repro.analysis.widget
"""Known-bad: unconditional numpy import outside the batch kernel."""
import numpy as np


def mean(xs):
    return float(np.mean(np.asarray(xs)))
