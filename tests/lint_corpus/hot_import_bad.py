# lint-corpus-module: repro.sim.engine
"""Known-bad: the engine hot path importing the persistence plane."""
from repro.sim.persistence import save_trace


def run_round(trace, path):
    save_trace(trace, path)  # the engine must never reach up
