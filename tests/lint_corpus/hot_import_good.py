# lint-corpus-module: repro.sim.engine
"""Known-good twin: the engine speaks only downward vocabulary."""
from repro.net.topology import Topology
from repro.sim.messages import StateMessage
from repro.sim.trace import ExecutionTrace


def run_round(graph: Topology, trace: ExecutionTrace):
    return StateMessage, graph, trace
