# lint-corpus-module: repro.bench.widget
"""Known-good twin: arena tables are read, copied, and only copies written."""
from repro.sim.arena import delivered_table


def with_diagonal(topology, live):
    table = delivered_table(topology)
    derived = table.T.copy()  # sanctioned: copy first ...
    derived[live, live] = True  # ... then write the private copy
    return derived


def degree_counts(topology):
    table = delivered_table(topology)
    counts = table.sum(axis=1)  # reads are fine
    fresh = table | table.T  # operator result allocates a new array
    return counts, fresh
