# lint-corpus-module: repro.sim.widget
"""Known-bad: mutating a FaultPlan (or its memo tables) after construction."""
from repro.faults.base import FaultPlan


def poison(plan: FaultPlan, event):
    plan.crashes[3] = event  # item write into the fault map
    plan.byzantine = {}  # rebinding a public field
    plan._live_cache.clear()  # reaching into a private memo table
    return plan


def rebuild(n: int, event):
    plan = FaultPlan(n)
    plan.crashes.update({0: event})  # mutating method on the fault map
    other = plan
    other._fault_free = None  # memo field write through an alias
    return plan
