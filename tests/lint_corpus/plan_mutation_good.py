# lint-corpus-module: repro.sim.widget
"""Known-good twin: read plans; build a new one to change anything."""
from repro.faults.base import FaultPlan


def widen(plan: FaultPlan, event):
    crashes = dict(plan.crashes)  # copy, then edit the copy
    crashes[3] = event
    return FaultPlan(plan.n, crashes=crashes, byzantine=plan.byzantine)


def inspect(plan: FaultPlan):
    return sorted(plan.crashes), sorted(plan.byzantine)
