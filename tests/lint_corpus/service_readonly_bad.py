# lint-corpus-module: repro.service.widget
"""Known-bad: the daemon reaching past the resolution/dispatch seams."""

from repro.core.dac import DACProcess  # the algorithm layer directly
from repro.sim.engine import RoundEngine  # a second execution path
from repro.sim.runner import run_consensus  # bypassing run_trials


def handle(spec, seed):
    from repro.adversary.periodic import figure1_adversary  # still banned inside a function

    engine = RoundEngine(DACProcess, figure1_adversary())
    return run_consensus(engine, seed=seed)
