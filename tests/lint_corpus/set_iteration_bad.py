# lint-corpus-module: repro.core.widget
"""Known-bad: iterating set-like values whose order is arbitrary."""


def first_pass(items):
    for x in {3, 1, 2}:  # literal set iteration
        items.append(x)
    vals = set(items)
    squared = [v * v for v in vals]  # comprehension over a tracked set name
    return squared


def materialize(items):
    return list(frozenset(items))  # list(...) freezes an arbitrary order


def merged(a, b):
    return [x for x in set(a) | set(b)]  # set algebra is still unordered
