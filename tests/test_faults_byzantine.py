"""Unit tests for Byzantine strategies, including the two-faced core."""

import random

import pytest

from repro.core.dbac import DBACProcess
from repro.faults.base import FaultPlan
from repro.faults.byzantine import (
    BothFaces,
    ExtremeByzantine,
    FixedValueByzantine,
    PhaseLiarByzantine,
    RandomByzantine,
    TwoFacedByzantine,
)
from repro.sim.messages import StateMessage


class FakeView:
    """Minimal stand-in for EngineView."""

    def __init__(self, max_phase=3, byzantine=frozenset()):
        self._max_phase = max_phase
        self.fault_plan = FaultPlan(8)
        self._byz = byzantine

    def max_fault_free_phase(self):
        return self._max_phase


def bind(strategy, node=7, n=8, f=1, input_value=0.0, seed=0):
    strategy.bind(node, n, f, input_value, random.Random(seed))
    return strategy


class TestFixedValue:
    def test_tracks_phase(self):
        s = bind(FixedValueByzantine(0.25))
        msg = s.messages(0, FakeView(max_phase=5))
        assert msg == StateMessage(0.25, 5)

    def test_pinned_phase(self):
        s = bind(FixedValueByzantine(0.25, phase_mode=2))
        assert s.messages(0, FakeView(max_phase=9)).phase == 2

    def test_bad_phase_mode_rejected(self):
        with pytest.raises(ValueError, match="phase_mode"):
            FixedValueByzantine(0.0, phase_mode="sometimes")


class TestExtreme:
    def test_equivocates_by_parity(self):
        s = bind(ExtremeByzantine())
        out = s.messages(0, FakeView())
        assert out[0].value == 0.0 and out[2].value == 0.0
        assert out[1].value == 1.0 and out[3].value == 1.0
        assert s.node not in out

    def test_custom_extremes(self):
        s = bind(ExtremeByzantine(low=-5.0, high=5.0))
        out = s.messages(0, FakeView())
        assert {m.value for m in out.values()} == {-5.0, 5.0}


class TestRandom:
    def test_messages_in_range_and_plausible_phase(self):
        s = bind(RandomByzantine())
        out = s.messages(0, FakeView(max_phase=4))
        assert len(out) == 7
        for msg in out.values():
            assert 0.0 <= msg.value <= 1.0
            assert 0 <= msg.phase <= 5

    def test_deterministic_per_seed(self):
        a = bind(RandomByzantine(), seed=5).messages(0, FakeView())
        b = bind(RandomByzantine(), seed=5).messages(0, FakeView())
        assert a == b


class TestPhaseLiar:
    def test_leads_the_max_phase(self):
        s = bind(PhaseLiarByzantine(value=1.0, phase_lead=100))
        msg = s.messages(0, FakeView(max_phase=7))
        assert msg.phase == 107
        assert msg.value == 1.0

    def test_negative_lead_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            PhaseLiarByzantine(phase_lead=-1)


class TestTwoFaced:
    def make(self, n=6, f=1):
        group_a = frozenset({0, 1, 2, 3})
        group_b = frozenset({1, 2, 3, 4, 5})
        listeners_a = frozenset({0, 1})
        listeners_b = frozenset({3, 4, 5})

        def factory(n_, f_, x, port):
            return DBACProcess(n_, f_, x, port, end_phase=10, quorum_override=4)

        strategy = TwoFacedByzantine(
            factory,
            group_a,
            group_b,
            input_a=0.0,
            input_b=1.0,
            listeners_a=listeners_a,
            listeners_b=listeners_b,
        )
        return bind(strategy, node=2, n=n, f=f)

    def test_faces_start_at_their_inputs(self):
        s = self.make()
        out = s.messages(0, FakeView())
        assert out[0].value == 0.0  # listener of A
        assert out[1].value == 0.0
        assert out[4].value == 1.0  # listener of B
        assert out[5].value == 1.0

    def test_unassigned_receiver_gets_face_a(self):
        s = self.make()
        out = s.messages(0, FakeView())
        # Node 3 is in listeners_b here; remove ambiguity by checking a
        # node outside both listener sets after reconstruction.
        strategy = TwoFacedByzantine(
            lambda n_, f_, x, p: DBACProcess(n_, f_, x, p, end_phase=10),
            {0, 1, 2},
            {3, 4, 5},
            input_a=0.0,
            input_b=1.0,
            listeners_a={0},
            listeners_b={4},
        )
        bind(strategy, node=2, n=6, f=1)
        out = strategy.messages(0, FakeView())
        assert out[5].value == 0.0  # neither listener set -> face A

    def test_byzantine_peers_get_both_faces(self):
        class ViewWithByz(FakeView):
            def __init__(self):
                super().__init__()
                self.fault_plan = FaultPlan(
                    6,
                    byzantine={
                        2: FixedValueByzantine(0.0),
                        3: FixedValueByzantine(0.0),
                    },
                )

        s = self.make()
        out = s.messages(0, ViewWithByz())
        assert isinstance(out[3], BothFaces)
        assert out[3].face_a.value == 0.0
        assert out[3].face_b.value == 1.0

    def test_observe_routes_messages_to_faces(self):
        s = self.make()
        s.messages(0, FakeView())  # materialize round-0 broadcasts
        # Group A senders 0,1 say 0.2; group B senders 4,5 say 0.8.
        s.observe(
            0,
            [
                (0, StateMessage(0.2, 0)),
                (1, StateMessage(0.2, 0)),
                (4, StateMessage(0.8, 0)),
                (5, StateMessage(0.8, 0)),
            ],
        )
        # Face A heard {self 0.0, 0.2, 0.2} -> still phase 0 (quorum 4
        # needs one more); feed another A sender to trigger an update.
        s.messages(1, FakeView())
        s.observe(1, [(0, StateMessage(0.2, 0)), (1, StateMessage(0.2, 0)), (3, StateMessage(0.4, 0))])
        assert s._face_a is not None
        assert s._face_a.phase >= 1

    def test_faces_see_only_their_group(self):
        s = self.make()
        s.messages(0, FakeView())
        # A message from node 4 (group B only) must not reach face A.
        s.observe(0, [(4, StateMessage(0.9, 0))])
        assert s._face_a is not None and s._face_b is not None
        assert s._face_a.received_count == 1  # self only
        assert s._face_b.received_count == 2  # self + node 4
