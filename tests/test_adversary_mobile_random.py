"""Unit tests for the mobile-omission and stochastic adversaries."""

import pytest

from repro.adversary.mobile import MobileOmissionAdversary
from repro.adversary.random_adv import EventuallyStableAdversary, RandomLinkAdversary
from repro.core.baselines import FloodMinProcess
from repro.faults.base import FaultPlan
from repro.net.dynadegree import check_dynadegree
from repro.net.graph import DirectedGraph
from repro.net.ports import identity_ports
from repro.sim.engine import Engine
from repro.sim.rng import child_rng


def run_floodmin(adversary, n, inputs, rounds):
    ports = identity_ports(n)
    procs = {
        v: FloodMinProcess(n, 0, inputs[v], ports.self_port(v), num_rounds=rounds)
        for v in range(n)
    }
    engine = Engine(procs, adversary, ports)
    engine.run(rounds)
    return engine, procs


class TestMobileOmission:
    def test_mode_validated(self):
        with pytest.raises(ValueError, match="mode"):
            MobileOmissionAdversary("chaotic")

    def test_at_most_one_incoming_drop(self):
        n = 5
        engine, _ = run_floodmin(
            MobileOmissionAdversary("rotate"), n, [0.0] * n, rounds=6
        )
        for snap in engine.trace.rounds:
            for v in range(n):
                assert snap.graph.in_degree(v) >= n - 2

    def test_promise_n_minus_2_verified(self):
        n = 5
        adv = MobileOmissionAdversary("block_min")
        engine, _ = run_floodmin(adv, n, [0.0, 1.0, 1.0, 1.0, 1.0], rounds=6)
        assert adv.promised_dynadegree() == (1, 3)
        assert check_dynadegree(engine.trace.dynamic_graph(), 1, 3).holds

    def test_block_min_suppresses_the_minimum(self):
        # The global minimum (node 0) never escapes: everyone else
        # decides 1, node 0 decides 0 -- Corollary 1's forced
        # disagreement made concrete.
        n = 5
        _, procs = run_floodmin(
            MobileOmissionAdversary("block_min"),
            n,
            [0.0, 1.0, 1.0, 1.0, 1.0],
            rounds=n - 1,
        )
        outputs = {v: procs[v].output() for v in range(n)}
        assert outputs[0] == 0.0
        assert all(outputs[v] == 1.0 for v in range(1, n))

    def test_none_mode_drops_nothing(self):
        n = 4
        adv = MobileOmissionAdversary("none")
        engine, procs = run_floodmin(adv, n, [0.0, 1.0, 1.0, 1.0], rounds=3)
        assert engine.trace.at(0) == DirectedGraph.complete(n)
        # Sanity: with no omissions FloodMin agrees.
        assert {procs[v].output() for v in range(n)} == {0.0}

    def test_block_max_targets_maximum(self):
        n = 4
        _, procs = run_floodmin(
            MobileOmissionAdversary("block_max"),
            n,
            [0.0, 1.0, 1.0, 1.0],
            rounds=3,
        )
        # Max-blocking doesn't stop min-flooding: all agree on 0.
        assert {procs[v].output() for v in range(n)} == {0.0}


class TestRandomLink:
    def test_probability_validated(self):
        with pytest.raises(ValueError, match="probability"):
            RandomLinkAdversary(-0.1)

    def test_p_one_is_complete(self):
        adv = RandomLinkAdversary(1.0)
        adv.setup(4, FaultPlan.fault_free_plan(4), child_rng(0, "adv"))
        assert adv.choose(0, None) == DirectedGraph.complete(4)

    def test_p_zero_is_empty(self):
        adv = RandomLinkAdversary(0.0)
        adv.setup(4, FaultPlan.fault_free_plan(4), child_rng(0, "adv"))
        assert len(adv.choose(0, None)) == 0

    def test_no_promise(self):
        assert RandomLinkAdversary(0.5).promised_dynadegree() is None

    def test_deterministic_per_seed(self):
        def draw():
            adv = RandomLinkAdversary(0.5)
            adv.setup(5, FaultPlan.fault_free_plan(5), child_rng(42, "adv"))
            return [adv.choose(t, None) for t in range(4)]

        assert draw() == draw()


class TestEventuallyStable:
    def test_stabilizes(self):
        adv = EventuallyStableAdversary(stable_round=3, p=0.0)
        adv.setup(4, FaultPlan.fault_free_plan(4), child_rng(0, "adv"))
        assert len(adv.choose(0, None)) == 0
        assert len(adv.choose(2, None)) == 0
        assert adv.choose(3, None) == DirectedGraph.complete(4)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventuallyStableAdversary(-1)
        with pytest.raises(ValueError, match="probability"):
            EventuallyStableAdversary(1, p=2.0)
