"""Unit tests for repro.net.dynamic: schedules, traces, window unions."""

import pytest

from repro.net.dynamic import DynamicGraph, EdgeSchedule, window_union
from repro.net.graph import DirectedGraph


class TestEdgeSchedule:
    def test_function_schedule(self):
        sched = EdgeSchedule(3, lambda t: [(0, 1)] if t % 2 == 0 else [])
        assert sched.edges_at(0) == [(0, 1)]
        assert sched.edges_at(1) == []
        assert sched.edges_at(2) == [(0, 1)]

    def test_graph_at_builds_graph(self):
        sched = EdgeSchedule(3, lambda t: [(0, 1), (1, 2)])
        g = sched.graph_at(5)
        assert isinstance(g, DirectedGraph)
        assert len(g) == 2

    def test_negative_round_rejected(self):
        sched = EdgeSchedule(3, lambda t: [])
        with pytest.raises(ValueError, match="non-negative"):
            sched.edges_at(-1)

    def test_table_schedule_repeats(self):
        sched = EdgeSchedule.from_table(3, [[(0, 1)], [(1, 2)]], repeat=True)
        assert sched.edges_at(0) == [(0, 1)]
        assert sched.edges_at(1) == [(1, 2)]
        assert sched.edges_at(2) == [(0, 1)]
        assert sched.edges_at(7) == [(1, 2)]

    def test_table_schedule_without_repeat_goes_silent(self):
        sched = EdgeSchedule.from_table(3, [[(0, 1)]], repeat=False)
        assert sched.edges_at(0) == [(0, 1)]
        assert sched.edges_at(1) == []

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError, match="at least one round"):
            EdgeSchedule.from_table(3, [])


class TestDynamicGraph:
    def test_record_and_read_back(self):
        dyn = DynamicGraph(3)
        g0 = DirectedGraph(3, [(0, 1)])
        g1 = DirectedGraph(3, [(1, 2)])
        dyn.record(g0)
        dyn.record(g1)
        assert len(dyn) == 2
        assert dyn.at(0) == g0
        assert dyn.at(1) == g1

    def test_record_size_mismatch_rejected(self):
        dyn = DynamicGraph(3)
        with pytest.raises(ValueError, match="expected 3"):
            dyn.record(DirectedGraph(4))

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            DynamicGraph(0)

    def test_window_slicing(self):
        dyn = DynamicGraph(2)
        for _ in range(5):
            dyn.record(DirectedGraph(2, [(0, 1)]))
        assert len(dyn.window(1, 3)) == 3
        with pytest.raises(ValueError, match="invalid window"):
            dyn.window(-1, 2)
        with pytest.raises(ValueError, match="invalid window"):
            dyn.window(0, 0)

    def test_window_union_is_papers_G_t(self):
        # G_t := (V, E(t) u E(t+1)): the figure-1 style aggregation.
        dyn = DynamicGraph(3)
        dyn.record(DirectedGraph(3, [(0, 1)]))
        dyn.record(DirectedGraph(3, [(1, 2)]))
        dyn.record(DirectedGraph(3))
        u01 = dyn.window_union(0, 2)
        assert set(u01.edges) == {(0, 1), (1, 2)}
        u12 = dyn.window_union(1, 2)
        assert set(u12.edges) == {(1, 2)}

    def test_from_schedule_materializes(self):
        sched = EdgeSchedule.from_table(3, [[(0, 1)], []])
        dyn = DynamicGraph.from_schedule(sched, 4)
        assert len(dyn) == 4
        assert len(dyn.at(0)) == 1
        assert len(dyn.at(1)) == 0

    def test_edges_per_round(self):
        sched = EdgeSchedule.from_table(3, [[(0, 1), (1, 0)], []])
        dyn = DynamicGraph.from_schedule(sched, 4)
        assert dyn.edges_per_round() == [2, 0, 2, 0]


class TestWindowUnion:
    def test_union_of_graphs(self):
        graphs = [DirectedGraph(3, [(0, 1)]), DirectedGraph(3, [(2, 1)])]
        u = window_union(graphs)
        assert set(u.edges) == {(0, 1), (2, 1)}

    def test_empty_window_needs_n(self):
        with pytest.raises(ValueError, match="without knowing n"):
            window_union([])
        u = window_union([], n=4)
        assert u.n == 4 and len(u) == 0

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ValueError, match="mixes graphs"):
            window_union([DirectedGraph(3), DirectedGraph(4)])


class TestScheduleGraphIdentity:
    """Regression: sources must not re-wrap an unchanged pattern into a
    fresh object each round (the pre-Topology behavior)."""

    def test_periodic_table_replays_identical_topologies(self):
        sched = EdgeSchedule.from_table(3, [[(0, 1)], [(1, 2)]], repeat=True)
        assert sched.graph_at(0) is sched.graph_at(2)
        assert sched.graph_at(1) is sched.graph_at(7)
        assert sched.graph_at(0) is not sched.graph_at(1)

    def test_unchanged_function_pattern_returns_cached_topology(self):
        sched = EdgeSchedule(3, lambda t: [(0, 1), (1, 2)])
        first = sched.graph_at(0)
        assert sched.graph_at(5) is first

    def test_silent_rounds_share_the_empty_topology(self):
        sched = EdgeSchedule(4, lambda t: [])
        assert sched.graph_at(0) is sched.graph_at(9)

    def test_from_schedule_materializes_shared_instances(self):
        sched = EdgeSchedule.from_table(3, [[(0, 1)], []], repeat=True)
        dyn = DynamicGraph.from_schedule(sched, 6)
        assert dyn.at(0) is dyn.at(2) is dyn.at(4)
        assert dyn.at(1) is dyn.at(3) is dyn.at(5)

    def test_alternating_patterns_hit_the_cache(self):
        # The figure1-style alternating schedule: both patterns must be
        # cached per schedule (not just the last round's).
        sched = EdgeSchedule(3, lambda t: [(0, 1)] if t % 2 == 0 else [(1, 2)])
        even, odd = sched.graph_at(0), sched.graph_at(1)
        assert sched.graph_at(2) is even
        assert sched.graph_at(3) is odd
