"""Unit tests for run_consensus and ExecutionReport."""

import pytest

from repro.adversary.base import StaticAdversary
from repro.adversary.constrained import RotatingQuorumAdversary
from repro.core.dac import DACProcess
from repro.faults.base import FaultPlan
from repro.faults.byzantine import FixedValueByzantine
from repro.net.ports import identity_ports
from repro.sim.runner import run_consensus

from tests.helpers import spread_inputs


def dac_processes(n, f, epsilon=1e-2, ports=None, **kwargs):
    ports = ports or identity_ports(n)
    inputs = spread_inputs(n)
    return {
        v: DACProcess(n, f, inputs[v], ports.self_port(v), epsilon=epsilon, **kwargs)
        for v in range(n)
    }


class TestStopModes:
    def test_output_mode_waits_for_algorithm(self):
        n = 5
        procs = dac_processes(n, 0)
        report = run_consensus(
            procs, StaticAdversary(), identity_ports(n), epsilon=1e-2, max_rounds=100
        )
        assert report.terminated
        assert report.stop_mode == "output"
        assert len(report.outputs) == n
        assert report.correct

    def test_oracle_mode_stops_at_epsilon(self):
        n = 5
        procs = dac_processes(n, 0, epsilon=1e-2)
        report = run_consensus(
            procs,
            StaticAdversary(),
            identity_ports(n),
            epsilon=0.3,
            stop_mode="oracle",
            max_rounds=100,
        )
        assert report.terminated
        assert report.output_spread <= 0.3 + 1e-9
        # Oracle stops earlier than the full p_end run would.
        assert report.rounds <= 5

    def test_unknown_stop_mode_rejected(self):
        with pytest.raises(ValueError, match="stop_mode"):
            run_consensus(
                dac_processes(3, 0),
                StaticAdversary(),
                identity_ports(3),
                epsilon=0.1,
                stop_mode="banana",
            )

    def test_max_rounds_cap_reports_nontermination(self):
        n = 5
        procs = dac_processes(n, 0, epsilon=1e-6)
        report = run_consensus(
            procs, StaticAdversary(), identity_ports(n), epsilon=1e-6, max_rounds=2
        )
        assert not report.terminated
        assert not report.correct
        # Vacuous safety: no outputs yet, so no violation to report.
        assert report.validity
        assert report.epsilon_agreement


class TestVerdicts:
    def test_validity_checked_against_input_hull(self):
        n = 5
        report = run_consensus(
            dac_processes(n, 0),
            StaticAdversary(),
            identity_ports(n),
            epsilon=1e-2,
            max_rounds=100,
        )
        lo, hi = min(report.inputs.values()), max(report.inputs.values())
        assert all(lo - 1e-9 <= v <= hi + 1e-9 for v in report.outputs.values())
        assert report.validity

    def test_summary_strings(self):
        n = 5
        report = run_consensus(
            dac_processes(n, 0),
            StaticAdversary(),
            identity_ports(n),
            epsilon=1e-2,
            max_rounds=100,
        )
        assert "[OK]" in report.summary()
        bad = run_consensus(
            dac_processes(n, 0, epsilon=1e-6),
            StaticAdversary(),
            identity_ports(n),
            epsilon=1e-6,
            max_rounds=1,
        )
        assert "[VIOLATION]" in bad.summary()

    def test_phase_ranges_present(self):
        n = 5
        report = run_consensus(
            dac_processes(n, 0),
            StaticAdversary(),
            identity_ports(n),
            epsilon=1e-2,
            max_rounds=100,
        )
        assert report.phase_ranges[0] == pytest.approx(1.0)
        assert report.phase_ranges == sorted(report.phase_ranges, reverse=True)
        assert all(rate <= 0.5 + 1e-9 for rate in report.convergence_rates)


class TestPromiseVerification:
    def test_promise_verified_on_trace(self):
        n = 6
        report = run_consensus(
            dac_processes(n, 0),
            RotatingQuorumAdversary(n // 2),
            identity_ports(n),
            epsilon=1e-2,
            max_rounds=100,
        )
        assert report.dynadegree_promise == (1, 3)
        assert report.dynadegree_verified is True

    def test_promise_skippable(self):
        n = 5
        report = run_consensus(
            dac_processes(n, 0),
            RotatingQuorumAdversary(n // 2),
            identity_ports(n),
            epsilon=1e-2,
            max_rounds=100,
            verify_promise=False,
        )
        assert report.dynadegree_verified is None

    def test_no_promise_no_verification(self):
        n = 5

        class Mute(StaticAdversary):
            def promised_dynadegree(self):
                return None

        report = run_consensus(
            dac_processes(n, 0),
            Mute(),
            identity_ports(n),
            epsilon=1e-2,
            max_rounds=100,
        )
        assert report.dynadegree_promise is None
        assert report.dynadegree_verified is None


class TestWatchedNodes:
    def test_byzantine_excluded_from_phase_series(self):
        # With a Byzantine node pinned at a wild value, V(p) must only
        # reflect fault-free nodes, so phase-0 range stays within the
        # fault-free inputs.
        n = 6
        ports = identity_ports(n)
        inputs = spread_inputs(n)
        plan = FaultPlan(n, byzantine={5: FixedValueByzantine(40.0, phase_mode=0)})
        procs = {
            v: DACProcess(n, 1, inputs[v], ports.self_port(v), epsilon=1e-2)
            for v in plan.non_byzantine
        }
        report = run_consensus(
            procs,
            StaticAdversary(),
            ports,
            epsilon=1e-2,
            f=1,
            fault_plan=plan,
            max_rounds=60,
        )
        assert report.phase_ranges[0] <= 1.0 + 1e-9
