"""Second round of hypothesis property tests: temporal reachability,
DBAC safety under fault mixtures, piggyback/DAC equivalence, and
persistence round-trips."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.base import StaticAdversary
from repro.adversary.random_adv import RandomLinkAdversary
from repro.core.dac import DACProcess
from repro.core.dbac import DBACProcess
from repro.core.piggyback import PiggybackDACProcess
from repro.faults.base import FaultPlan
from repro.faults.byzantine import RandomByzantine
from repro.faults.crash import CrashEvent
from repro.net.dynadegree import max_degree_for_window
from repro.net.dynamic import DynamicGraph
from repro.net.generators import random_edges
from repro.net.graph import DirectedGraph
from repro.net.ports import identity_ports, random_ports
from repro.net.temporal import max_reach_for_window, window_reach_sets
from repro.sim.persistence import replay_adversary, trace_from_dict, trace_to_dict
from repro.sim.rng import child_rng
from repro.sim.runner import run_consensus

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_trace(n, rounds, p, seed):
    rng = random.Random(seed)
    dyn = DynamicGraph(n)
    for _ in range(rounds):
        dyn.record(DirectedGraph(n, random_edges(n, p, rng)))
    return dyn


class TestTemporalProperties:
    @RELAXED
    @given(
        n=st.integers(3, 7),
        rounds=st.integers(2, 8),
        p=st.floats(0.1, 0.7),
        seed=st.integers(0, 9999),
        window=st.integers(1, 4),
    )
    def test_reach_dominates_degree(self, n, rounds, p, seed, window):
        trace = random_trace(n, rounds, p, seed)
        assert max_reach_for_window(trace, window) >= max_degree_for_window(
            trace, window
        )

    @RELAXED
    @given(
        n=st.integers(3, 6),
        p=st.floats(0.2, 0.8),
        seed=st.integers(0, 9999),
    )
    def test_reach_monotone_in_window(self, n, p, seed):
        trace = random_trace(n, 6, p, seed)
        values = [max_reach_for_window(trace, w) for w in range(1, 6)]
        assert values == sorted(values)

    @RELAXED
    @given(
        n=st.integers(2, 6),
        p=st.floats(0.0, 1.0),
        seed=st.integers(0, 9999),
    )
    def test_reach_sets_always_contain_self(self, n, p, seed):
        trace = random_trace(n, 3, p, seed)
        reach = window_reach_sets(trace.window(0, 3))
        for v in range(n):
            assert v in reach[v]


class TestDBACMixedFaultSafety:
    @RELAXED
    @given(
        seed=st.integers(0, 9999),
        p=st.floats(0.2, 0.9),
        crash_round=st.integers(0, 6),
    )
    def test_safety_with_one_crash_one_byzantine(self, seed, p, crash_round):
        # Arbitrary random adversary (no promise): termination may fail
        # but validity must never break.
        n, f = 11, 2
        ports = random_ports(n, child_rng(seed, "ports"))
        rng = child_rng(seed, "inputs")
        inputs = [rng.random() for _ in range(n)]
        plan = FaultPlan(
            n,
            crashes={10: CrashEvent(10, crash_round)},
            byzantine={9: RandomByzantine(low=-3.0, high=3.0)},
        )
        procs = {
            v: DBACProcess(n, f, inputs[v], ports.self_port(v), end_phase=5)
            for v in plan.non_byzantine
        }
        report = run_consensus(
            procs,
            RandomLinkAdversary(p),
            ports,
            epsilon=1e-1,
            f=f,
            fault_plan=plan,
            stop_mode="output",
            max_rounds=80,
            seed=seed,
        )
        honest = [inputs[v] for v in plan.fault_free]
        lo, hi = min(honest), max(honest)
        for v, value in report.outputs.items():
            assert lo - 1e-9 <= value <= hi + 1e-9


class TestPiggybackEquivalence:
    @RELAXED
    @given(seed=st.integers(0, 9999), n=st.integers(4, 9))
    def test_k0_equals_dac_on_any_random_network(self, seed, n):
        ports = identity_ports(n)
        rng = child_rng(seed, "inputs")
        inputs = [rng.random() for _ in range(n)]

        def run(factory):
            procs = {v: factory(v) for v in range(n)}
            report = run_consensus(
                procs,
                RandomLinkAdversary(0.5),
                ports,
                epsilon=1e-2,
                max_rounds=40,
                seed=seed,
            )
            return (report.rounds, tuple(sorted(report.outputs.items())))

        dac = run(lambda v: DACProcess(n, 0, inputs[v], v, epsilon=1e-2))
        pb0 = run(
            lambda v: PiggybackDACProcess(n, 0, inputs[v], v, epsilon=1e-2, k=0)
        )
        assert dac == pb0


class TestPersistenceProperties:
    @RELAXED
    @given(seed=st.integers(0, 9999), p=st.floats(0.1, 0.9))
    def test_round_trip_preserves_replayability(self, seed, p):
        n = 5
        ports = identity_ports(n)
        rng = child_rng(seed, "inputs")
        inputs = [rng.random() for _ in range(n)]

        def procs():
            return {v: DACProcess(n, 0, inputs[v], v, epsilon=1e-2) for v in range(n)}

        original = run_consensus(
            procs(), RandomLinkAdversary(p), ports, epsilon=1e-2,
            max_rounds=30, seed=seed,
        )
        rebuilt_trace = trace_from_dict(trace_to_dict(original.trace))
        replayed = run_consensus(
            procs(), replay_adversary(rebuilt_trace), ports, epsilon=1e-2,
            max_rounds=30, seed=seed,
        )
        assert replayed.outputs == original.outputs


class TestDACStaticNetworkProperty:
    @RELAXED
    @given(n=st.integers(3, 12), seed=st.integers(0, 9999))
    def test_complete_graph_always_correct(self, n, seed):
        ports = identity_ports(n)
        rng = child_rng(seed, "inputs")
        inputs = [rng.random() for _ in range(n)]
        procs = {v: DACProcess(n, 0, inputs[v], v, epsilon=1e-3) for v in range(n)}
        report = run_consensus(
            procs, StaticAdversary(), ports, epsilon=1e-3, max_rounds=60
        )
        assert report.correct
        # On a complete graph every phase takes one round.
        assert report.rounds <= procs[0].end_phase + 1
