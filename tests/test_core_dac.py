"""Unit tests for DAC (Algorithm 1), exercised message by message.

These tests drive a single DACProcess directly through deliver() calls,
pinning the pseudo-code's semantics: the jump rule (lines 5-8), the
per-port once-per-phase rule (line 9), the quorum update (lines 12-15),
RESET/STORE, and output at p_end.
"""

import pytest

from repro.core.dac import DACProcess
from repro.sim.messages import StateMessage
from repro.sim.node import Delivery


def dac(n=5, f=0, x=0.5, port=0, eps=0.25, **kwargs):
    # eps=0.25 -> p_end = 2: small enough to reach in unit tests.
    return DACProcess(n, f, x, port, epsilon=eps, **kwargs)


def msg(value, phase):
    return StateMessage(value, phase)


class TestInitialization:
    def test_initial_state(self):
        p = dac(x=0.3)
        assert p.value == 0.3
        assert p.phase == 0
        assert p.received_count == 1  # R_i[i] = 1
        assert not p.has_output()

    def test_quorum_is_majority(self):
        assert dac(n=5).quorum == 3
        assert dac(n=6).quorum == 4
        assert dac(n=9).quorum == 5

    def test_quorum_override(self):
        assert dac(n=6, quorum_override=3).quorum == 3
        with pytest.raises(ValueError, match="quorum"):
            dac(quorum_override=0)

    def test_zero_end_phase_outputs_input_immediately(self):
        p = dac(eps=2.0)
        assert p.has_output()
        assert p.output() == 0.5

    def test_broadcast_carries_state(self):
        p = dac(x=0.7)
        out = p.broadcast()
        assert out.value == 0.7 and out.phase == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DACProcess(0, 0, 0.0, 0)
        with pytest.raises(ValueError):
            DACProcess(3, 3, 0.0, 0)
        with pytest.raises(ValueError):
            DACProcess(3, 0, 0.0, 5)
        with pytest.raises(ValueError, match="non-negative"):
            dac(end_phase=-1)


class TestQuorumUpdate:
    def test_advances_on_majority(self):
        p = dac(n=5, x=0.0)  # quorum 3: self + 2 others
        p.deliver([Delivery(1, msg(1.0, 0)), Delivery(2, msg(0.5, 0))])
        assert p.phase == 1
        # Midpoint of extremes seen: min(0.0), max(1.0) -> 0.5.
        assert p.value == 0.5

    def test_own_value_anchors_extremes(self):
        # RESET folds v_i into v_min/v_max, so the update includes it.
        p = dac(n=5, x=0.0)
        p.deliver([Delivery(1, msg(0.8, 0)), Delivery(2, msg(1.0, 0))])
        assert p.value == 0.5  # (0.0 + 1.0) / 2

    def test_no_advance_below_quorum(self):
        p = dac(n=5, x=0.0)
        p.deliver([Delivery(1, msg(1.0, 0))])
        assert p.phase == 0
        assert p.received_count == 2

    def test_same_port_counted_once_per_phase(self):
        # Line 9: R_i[j] gate.
        p = dac(n=5, x=0.0)
        p.deliver([Delivery(1, msg(1.0, 0))])
        p.deliver([Delivery(1, msg(1.0, 0)), Delivery(1, msg(0.9, 0))])
        assert p.phase == 0
        assert p.received_count == 2

    def test_lower_phase_messages_ignored(self):
        p = dac(n=5, x=0.0, eps=0.25)
        p.deliver([Delivery(1, msg(1.0, 0)), Delivery(2, msg(0.5, 0))])
        assert p.phase == 1
        p.deliver([Delivery(3, msg(0.0, 0))])  # stale phase
        assert p.received_count == 1
        assert p.phase == 1

    def test_quorum_state_resets_each_phase(self):
        p = dac(n=5, x=0.0)
        p.deliver([Delivery(1, msg(1.0, 0)), Delivery(2, msg(0.5, 0))])
        assert p.phase == 1 and p.received_count == 1
        # Ports 1 and 2 may count again in the new phase.
        p.deliver([Delivery(1, msg(0.5, 1)), Delivery(2, msg(0.5, 1))])
        assert p.phase == 2

    def test_self_message_filtered_by_bit_vector(self):
        # The engine always delivers the node's own message; R_i[i]=1
        # means it never stores or double-counts it.
        p = dac(n=5, x=0.0, port=0)
        p.deliver([Delivery(0, msg(0.0, 0))])
        assert p.received_count == 1
        p.deliver([Delivery(0, msg(0.0, 0)), Delivery(1, msg(1.0, 0)), Delivery(2, msg(1.0, 0))])
        assert p.phase == 1


class TestJumpRule:
    def test_jump_copies_state(self):
        p = dac(n=5, x=0.0, eps=0.25)
        p.deliver([Delivery(3, msg(0.9, 1))])
        assert p.phase == 1
        assert p.value == 0.9

    def test_jump_resets_quorum_tracking(self):
        p = dac(n=5, x=0.0)
        p.deliver([Delivery(1, msg(1.0, 0))])  # port 1 marked in phase 0
        p.deliver([Delivery(2, msg(0.9, 1))])  # jump to phase 1
        assert p.received_count == 1
        # Port 1 counts fresh in phase 1.
        p.deliver([Delivery(1, msg(0.5, 1)), Delivery(3, msg(0.7, 1))])
        assert p.phase == 2

    def test_jump_to_end_phase_outputs_copied_value(self):
        p = dac(n=5, x=0.0, eps=0.25)  # p_end = 2
        p.deliver([Delivery(1, msg(0.42, 2))])
        assert p.has_output()
        assert p.output() == 0.42

    def test_jump_disabled_ignores_future_phases(self):
        p = dac(n=5, x=0.0, enable_jump=False)
        p.deliver([Delivery(3, msg(0.9, 1))])
        assert p.phase == 0
        assert p.value == 0.0
        assert p.received_count == 1

    def test_mid_batch_jump_then_same_phase_counting(self):
        # After a jump mid-batch, later messages of the new phase count.
        p = dac(n=5, x=0.0)
        batch = [
            Delivery(1, msg(0.9, 1)),  # jump to 1
            Delivery(2, msg(0.5, 1)),  # counts in phase 1
            Delivery(3, msg(0.6, 1)),  # completes quorum 3 -> phase 2
        ]
        p.deliver(batch)
        assert p.phase == 2
        assert p.value == pytest.approx((0.5 + 0.9) / 2)


class TestOutput:
    def test_reaches_end_phase_and_freezes(self):
        p = dac(n=3, x=0.0, eps=0.25)  # quorum 2, p_end 2
        p.deliver([Delivery(1, msg(1.0, 0))])
        p.deliver([Delivery(1, msg(1.0, 1))])
        assert p.has_output()
        frozen = p.output()
        # Further messages change nothing.
        p.deliver([Delivery(2, msg(0.0, 2)), Delivery(1, msg(0.0, 2))])
        assert p.output() == frozen
        assert p.phase == p.end_phase

    def test_output_before_termination_raises(self):
        p = dac()
        with pytest.raises(RuntimeError, match="not terminated"):
            p.output()

    def test_keeps_broadcasting_after_output(self):
        p = dac(n=3, x=0.0, eps=0.25)
        p.deliver([Delivery(1, msg(1.0, 2))])  # jump straight to p_end
        assert p.has_output()
        out = p.broadcast()
        assert out.phase == p.end_phase
        assert out.value == p.output()


class TestStateKey:
    def test_distinguishes_states(self):
        a, b = dac(x=0.0), dac(x=0.0)
        assert a.state_key() == b.state_key()
        a.deliver([Delivery(1, msg(1.0, 0))])
        assert a.state_key() != b.state_key()

    def test_hashable(self):
        hash(dac().state_key())
