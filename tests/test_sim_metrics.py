"""Unit tests for repro.sim.metrics: counters and the V(p) series."""

import pytest

from repro.sim.metrics import MetricsCollector, PhaseRangeSeries


class TestMetricsCollector:
    def test_accumulates(self):
        m = MetricsCollector()
        m.on_round(delivered=4, bits=400, broadcasts=5)
        m.on_round(delivered=2, bits=200, broadcasts=5)
        assert m.rounds == 2
        assert m.delivered == 6
        assert m.bits == 600
        assert m.broadcasts == 10
        assert m.per_round_delivered == [4, 2]
        assert m.per_round_bits == [400, 200]

    def test_mean_bits(self):
        m = MetricsCollector()
        assert m.mean_bits_per_round == 0.0
        m.on_round(1, 100, 1)
        m.on_round(1, 300, 1)
        assert m.mean_bits_per_round == 200.0


def states(mapping):
    """Build a snapshot dict: node -> {value, phase}."""
    return {node: {"value": v, "phase": p} for node, (v, p) in mapping.items()}


class TestPhaseRangeSeries:
    def test_initial_states_fill_phase0(self):
        series = PhaseRangeSeries([0, 1, 2])
        series.observe_states(states({0: (0.0, 0), 1: (0.5, 0), 2: (1.0, 0)}))
        assert sorted(series.multiset(0)) == [0.0, 0.5, 1.0]
        assert series.range_of(0) == 1.0

    def test_phase_transition_recorded_once(self):
        series = PhaseRangeSeries([0])
        series.observe_states(states({0: (0.2, 0)}))
        series.observe_states(states({0: (0.2, 0)}))  # no transition
        series.observe_states(states({0: (0.6, 1)}))  # to phase 1
        series.observe_states(states({0: (0.6, 1)}))  # stable
        assert series.multiset(0) == [0.2]
        assert series.multiset(1) == [0.6]

    def test_jump_fills_skipped_phases(self):
        # Definition 6: a jump from 0 to 3 writes the landing value
        # into phases 1, 2 and 3.
        series = PhaseRangeSeries([0])
        series.observe_states(states({0: (0.1, 0)}))
        series.observe_states(states({0: (0.8, 3)}))
        for p in (1, 2, 3):
            assert series.multiset(p) == [0.8]

    def test_unwatched_nodes_ignored(self):
        series = PhaseRangeSeries([0])
        series.observe_states(states({0: (0.5, 0), 9: (0.9, 0)}))
        assert series.multiset(0) == [0.5]

    def test_missing_watched_node_skipped(self):
        # Crashed nodes simply disappear from snapshots.
        series = PhaseRangeSeries([0, 1])
        series.observe_states(states({0: (0.5, 0)}))
        assert series.multiset(0) == [0.5]

    def test_range_series_and_rates(self):
        series = PhaseRangeSeries([0, 1])
        series.observe_states(states({0: (0.0, 0), 1: (1.0, 0)}))
        series.observe_states(states({0: (0.25, 1), 1: (0.75, 1)}))
        series.observe_states(states({0: (0.5, 2), 1: (0.5, 2)}))
        assert series.range_series() == [1.0, 0.5, 0.0]
        assert series.convergence_rates() == [0.5, 0.0]

    def test_rates_skip_collapsed_phases(self):
        series = PhaseRangeSeries([0, 1])
        series.observe_states(states({0: (0.5, 0), 1: (0.5, 0)}))
        series.observe_states(states({0: (0.5, 1), 1: (0.5, 1)}))
        assert series.convergence_rates() == []

    def test_empty_series_has_empty_range_series(self):
        assert PhaseRangeSeries([0]).range_series() == []

    def test_record_feeds_phases_directly(self):
        series = PhaseRangeSeries([0])
        series.record(0, 0.25)
        series.record(0, 0.75)
        assert series.multiset(0) == [0.25, 0.75]
        assert series.range_of(0) == 0.5

    def test_empty_middle_phase_stays_aligned(self):
        # Regression: a jump over a phase nobody recorded used to be
        # silently dropped from range_series, so index p no longer
        # meant phase p and convergence_rates paired phases 0 and 2.
        series = PhaseRangeSeries([0, 1])
        series.record(0, 0.0)
        series.record(0, 1.0)
        series.record(2, 0.4)  # phase 1 recorded by nobody
        series.record(2, 0.6)
        assert series.range_series() == [1.0, None, pytest.approx(0.2)]

    def test_rates_skip_pairs_with_empty_phase(self):
        # Neither (0, 1) nor (1, 2) is a defined pair across the empty
        # phase 1; pairing 0 with 2 (the old behavior) reported a fake
        # two-phase contraction as a single-phase rate.
        series = PhaseRangeSeries([0, 1])
        series.record(0, 0.0)
        series.record(0, 1.0)
        series.record(2, 0.4)
        series.record(2, 0.6)
        assert series.convergence_rates() == []

    def test_rates_resume_after_empty_phase(self):
        series = PhaseRangeSeries([0, 1])
        for value in (0.0, 1.0):
            series.record(0, value)
        for value in (0.2, 0.7):
            series.record(2, value)
        for value in (0.3, 0.55):
            series.record(3, value)
        # Only the adjacent defined pair (2, 3) yields a rate.
        assert series.convergence_rates() == [pytest.approx(0.5)]

    def test_interval_of(self):
        series = PhaseRangeSeries([0, 1])
        series.observe_states(states({0: (0.2, 0), 1: (0.9, 0)}))
        assert series.interval_of(0) == (0.2, 0.9)
        assert series.interval_of(5) is None

    def test_max_phase(self):
        series = PhaseRangeSeries([0])
        assert series.max_phase() == 0
        series.observe_states(states({0: (0.1, 0)}))
        series.observe_states(states({0: (0.1, 4)}))
        assert series.max_phase() == 4

    def test_watched_exposed(self):
        series = PhaseRangeSeries([3, 1])
        assert series.watched == frozenset({1, 3})
