"""Unit tests for the synchronous round engine.

Uses small scripted processes (recorders/echoers) rather than the real
algorithms so each engine behavior is pinned in isolation: delivery
along chosen links, self-delivery, port tagging and ordering, crash
semantics (clean and partial), Byzantine equivocation, and trace
recording.
"""

import pytest

from repro.adversary.base import ScheduleAdversary, StaticAdversary
from repro.faults.base import FaultPlan
from repro.faults.byzantine import ByzantineStrategy
from repro.faults.crash import CrashEvent, partial_crash
from repro.net.dynamic import EdgeSchedule
from repro.net.graph import DirectedGraph
from repro.net.ports import PortNumbering, identity_ports
from repro.sim.engine import Engine
from repro.sim.messages import StateMessage
from repro.sim.node import ConsensusProcess


class RecorderProcess(ConsensusProcess):
    """Broadcasts its ID-tagged value; records everything delivered."""

    def __init__(self, n, f, input_value, self_port):
        super().__init__(n, f, input_value, self_port)
        self.inbox_log: list[list] = []

    def broadcast(self):
        return StateMessage(self.input_value, 0)

    def deliver(self, deliveries):
        self.inbox_log.append(list(deliveries))

    def has_output(self):
        return False

    def output(self):
        raise RuntimeError("recorder never outputs")

    @property
    def value(self):
        return self.input_value

    @property
    def phase(self):
        return 0


def make_engine(n, adversary, fault_plan=None, ports=None, f=0):
    ports = ports or identity_ports(n)
    plan = fault_plan or FaultPlan.fault_free_plan(n)
    processes = {
        v: RecorderProcess(n, f, float(v), ports.self_port(v))
        for v in plan.non_byzantine
    }
    engine = Engine(processes, adversary, ports, fault_plan=plan, f=f)
    return engine, processes


class TestDelivery:
    def test_messages_follow_chosen_links(self):
        sched = EdgeSchedule.from_table(3, [[(0, 2)]])
        engine, procs = make_engine(3, ScheduleAdversary(sched))
        engine.run_round()
        # Node 2 hears node 0 (port 0) plus itself (port 2).
        ports_seen = [d.port for d in procs[2].inbox_log[0]]
        assert ports_seen == [0, 2]
        # Node 1 hears only itself.
        assert [d.port for d in procs[1].inbox_log[0]] == [1]

    def test_none_broadcast_is_a_silent_round(self):
        # Regression: a process returning None from broadcast() sends
        # nothing -- no (sender, None) deliveries, no self-delivery,
        # no bits charged -- matching the self-delivery convention.
        class MuteProcess(RecorderProcess):
            def broadcast(self):
                return None

        ports = identity_ports(3)
        procs = {
            0: MuteProcess(3, 0, 0.0, 0),
            1: RecorderProcess(3, 0, 1.0, 1),
            2: RecorderProcess(3, 0, 2.0, 2),
        }
        engine = Engine(procs, StaticAdversary(), ports)
        record = engine.run_round()
        # Only nodes 1 and 2 put a message on the wire (to 2 receivers
        # each on the complete graph).
        assert record.delivered == 4
        for receiver in range(3):
            batch = procs[receiver].inbox_log[0]
            assert all(d.message is not None for d in batch)
            assert 0 not in [d.port for d in batch]  # identity ports

    def test_self_delivery_is_reliable(self):
        # Even with an empty graph, everyone hears themselves.
        sched = EdgeSchedule.from_table(3, [[]])
        engine, procs = make_engine(3, ScheduleAdversary(sched))
        engine.run_round()
        for v in range(3):
            batch = procs[v].inbox_log[0]
            assert len(batch) == 1
            assert batch[0].port == v
            assert batch[0].message.value == float(v)

    def test_deliveries_sorted_by_port(self):
        tables = [
            [2, 1, 0],  # node 0 sees sender 0 on port 2, sender 2 on port 0
            [0, 1, 2],
            [0, 1, 2],
        ]
        ports = PortNumbering(tables)
        engine, procs = make_engine(3, StaticAdversary(), ports=ports)
        engine.run_round()
        batch = procs[0].inbox_log[0]
        assert [d.port for d in batch] == sorted(d.port for d in batch)
        # Port 0 at node 0 is sender 2.
        assert batch[0].message.value == 2.0

    def test_metrics_count_link_deliveries_not_self(self):
        engine, _ = make_engine(3, StaticAdversary())
        engine.run_round()
        # Complete graph on 3 nodes: 6 link deliveries.
        assert engine.metrics.delivered == 6
        assert engine.metrics.bits == 6 * StateMessage(0.0, 0).bits()

    def test_adversary_graph_size_checked(self):
        class BadAdversary(StaticAdversary):
            def choose(self, t, view):
                return DirectedGraph(2)

        engine, _ = make_engine(3, BadAdversary(DirectedGraph.complete(3)))
        with pytest.raises(ValueError, match="adversary chose"):
            engine.run_round()


class TestCrashSemantics:
    def test_clean_crash_silences_and_freezes(self):
        plan = FaultPlan(3, crashes={2: CrashEvent(2, 1)})
        engine, procs = make_engine(3, StaticAdversary(), fault_plan=plan)
        engine.run_round()  # round 0: node 2 alive
        engine.run_round()  # round 1: node 2 crashed
        # Round 0: node 0 heard 1, 2, self.
        assert len(procs[0].inbox_log[0]) == 3
        # Round 1: node 0 hears 1 and self only.
        assert [d.port for d in procs[0].inbox_log[1]] == [0, 1]
        # Node 2 processed round 0 but not round 1.
        assert len(procs[2].inbox_log) == 1

    def test_dead_on_arrival(self):
        plan = FaultPlan(3, crashes={1: CrashEvent(1, 0)})
        engine, procs = make_engine(3, StaticAdversary(), fault_plan=plan)
        engine.run_round()
        assert [d.port for d in procs[0].inbox_log[0]] == [0, 2]
        assert procs[1].inbox_log == []

    def test_partial_crash_reaches_only_whitelist(self):
        plan = FaultPlan(4, crashes={3: partial_crash(3, 0, receivers={0})})
        engine, procs = make_engine(4, StaticAdversary(), fault_plan=plan)
        engine.run_round()
        # Node 0 got node 3's last message; nodes 1 and 2 did not.
        assert 3 in [d.port for d in procs[0].inbox_log[0]]
        assert 3 not in [d.port for d in procs[1].inbox_log[0]]
        assert 3 not in [d.port for d in procs[2].inbox_log[0]]

    def test_processes_must_cover_non_byzantine(self):
        plan = FaultPlan(3, crashes={2: CrashEvent(2, 1)})
        ports = identity_ports(3)
        procs = {0: RecorderProcess(3, 0, 0.0, 0)}  # missing 1 and 2
        with pytest.raises(ValueError, match="cover exactly"):
            Engine(procs, StaticAdversary(), ports, fault_plan=plan)


class EquivocatorStrategy(ByzantineStrategy):
    """Sends value == receiver id (distinct lie per receiver)."""

    def messages(self, t, view):
        return {
            r: StateMessage(float(r), 0) for r in range(self.n) if r != self.node
        }


class UniformStrategy(ByzantineStrategy):
    """Sends the same fixed message to everyone."""

    def messages(self, t, view):
        return StateMessage(99.0, 0)


class TestByzantineSemantics:
    def test_equivocation_per_receiver(self):
        plan = FaultPlan(3, byzantine={2: EquivocatorStrategy()})
        engine, procs = make_engine(3, StaticAdversary(), fault_plan=plan, f=1)
        engine.run_round()
        v0 = [d.message.value for d in procs[0].inbox_log[0] if d.port == 2]
        v1 = [d.message.value for d in procs[1].inbox_log[0] if d.port == 2]
        assert v0 == [0.0] and v1 == [1.0]

    def test_uniform_strategy_broadcast(self):
        plan = FaultPlan(3, byzantine={2: UniformStrategy()})
        engine, procs = make_engine(3, StaticAdversary(), fault_plan=plan, f=1)
        engine.run_round()
        for v in (0, 1):
            lies = [d.message.value for d in procs[v].inbox_log[0] if d.port == 2]
            assert lies == [99.0]

    def test_byzantine_observe_sees_true_senders(self):
        class Spy(UniformStrategy):
            def __init__(self):
                super().__init__()
                self.seen = []

            def observe(self, t, received):
                self.seen.append([s for s, _ in received])

        spy = Spy()
        plan = FaultPlan(3, byzantine={2: spy})
        engine, _ = make_engine(3, StaticAdversary(), fault_plan=plan, f=1)
        engine.run_round()
        assert spy.seen == [[0, 1]]

    def test_byzantine_strategy_bound_to_node(self):
        strategy = UniformStrategy()
        plan = FaultPlan(4, byzantine={3: strategy})
        make_engine(4, StaticAdversary(), fault_plan=plan, f=1)
        assert strategy.node == 3
        assert strategy.n == 4
        assert strategy.f == 1


class TestRunLoop:
    def test_run_respects_max_rounds(self):
        engine, _ = make_engine(3, StaticAdversary())
        assert engine.run(5) == 5
        assert engine.current_round == 5

    def test_stop_condition_checked_before_rounds(self):
        engine, _ = make_engine(3, StaticAdversary())
        assert engine.run(10, stop_when=lambda e: True) == 0

    def test_stop_condition_mid_run(self):
        engine, _ = make_engine(3, StaticAdversary())
        executed = engine.run(10, stop_when=lambda e: e.current_round >= 3)
        assert executed == 3

    def test_run_result_reports_early_stop(self):
        engine, _ = make_engine(3, StaticAdversary())
        result = engine.run(10, stop_when=lambda e: e.current_round >= 3)
        assert result == 3 and result.rounds == 3
        assert result.stopped

    def test_stop_checked_after_final_round(self):
        # Regression: the docstring always promised a final check, but
        # the loop used to end at max_rounds without one -- callers had
        # to re-evaluate stop_when manually to learn the run succeeded.
        engine, _ = make_engine(3, StaticAdversary())
        result = engine.run(3, stop_when=lambda e: e.current_round >= 3)
        assert result == 3
        assert result.stopped  # the *final* round satisfied the condition

    def test_cap_without_stop_is_not_stopped(self):
        engine, _ = make_engine(3, StaticAdversary())
        result = engine.run(2, stop_when=lambda e: e.current_round >= 99)
        assert result == 2
        assert not result.stopped

    def test_no_stop_condition_never_stopped(self):
        engine, _ = make_engine(3, StaticAdversary())
        result = engine.run(4)
        assert result == 4
        assert not result.stopped

    def test_zero_rounds_still_checks_condition(self):
        engine, _ = make_engine(3, StaticAdversary())
        assert engine.run(0, stop_when=lambda e: True).stopped
        assert not engine.run(0, stop_when=lambda e: False).stopped

    def test_negative_max_rounds_rejected(self):
        engine, _ = make_engine(3, StaticAdversary())
        with pytest.raises(ValueError, match="non-negative"):
            engine.run(-1)

    def test_trace_records_rounds(self):
        engine, _ = make_engine(3, StaticAdversary())
        engine.run(4)
        assert engine.trace is not None
        assert len(engine.trace) == 4
        assert engine.trace.rounds[0].graph == DirectedGraph.complete(3)

    def test_trace_disabled(self):
        ports = identity_ports(3)
        procs = {v: RecorderProcess(3, 0, 0.0, v) for v in range(3)}
        engine = Engine(procs, StaticAdversary(), ports, record_trace=False)
        engine.run(3)
        assert engine.trace is None
        assert engine.metrics.rounds == 3

    def test_fast_path_skips_snapshots_but_not_observers(self):
        # With a trace disabled the engine only materializes snapshots
        # when observers are registered -- and those observers still see
        # every round.
        ports = identity_ports(3)
        procs = {v: RecorderProcess(3, 0, 0.0, v) for v in range(3)}
        engine = Engine(procs, StaticAdversary(), ports, record_trace=False)
        seen = []
        engine.observers.append(lambda eng, snap: seen.append(snap.round))
        engine.run(2)
        assert seen == [0, 1]
        engine.observers.clear()
        engine.run(2)  # now truly snapshot-free
        assert seen == [0, 1]
        assert engine.metrics.rounds == 4

    def test_observers_called_per_round(self):
        engine, _ = make_engine(3, StaticAdversary())
        calls = []
        engine.observers.append(lambda eng, snap: calls.append(snap.round))
        engine.run(3)
        assert calls == [0, 1, 2]

    def test_fault_plan_size_checked(self):
        ports = identity_ports(3)
        procs = {v: RecorderProcess(3, 0, 0.0, v) for v in range(3)}
        with pytest.raises(ValueError, match="fault plan"):
            Engine(procs, StaticAdversary(), ports, fault_plan=FaultPlan(4))

    def test_fault_free_values_and_range(self):
        engine, _ = make_engine(3, StaticAdversary())
        assert engine.fault_free_values() == {0: 0.0, 1: 1.0, 2: 2.0}
        assert engine.fault_free_range() == 2.0
