"""Integration tests: DBAC end-to-end (Theorems 4 and 7, Section V).

DBAC at its boundary n = 5f + 1 with f equivocating Byzantine nodes
under enforcing (T, floor((n+3f)/2)) adversaries: termination,
validity within the *fault-free* hull, epsilon-agreement, and the
convergence-rate bound.
"""

import pytest

from repro.adversary.constrained import RotatingQuorumAdversary
from repro.core.dbac import DBACProcess
from repro.core.phases import dbac_convergence_rate
from repro.faults.base import FaultPlan
from repro.faults.byzantine import (
    ExtremeByzantine,
    FixedValueByzantine,
    PhaseLiarByzantine,
    RandomByzantine,
)
from repro.net.ports import random_ports
from repro.sim.rng import child_rng, spawn_inputs
from repro.sim.runner import run_consensus
from repro.workloads import build_dbac_execution, dbac_degree

STRATEGIES = {
    "extreme": ExtremeByzantine,
    "random": RandomByzantine,
    "liar": lambda: PhaseLiarByzantine(value=1.0, phase_lead=500),
    "pin-high": lambda: FixedValueByzantine(1.0),
    "pin-low": lambda: FixedValueByzantine(0.0),
}


def run_dbac(n, f, strategy_name, seed=0, epsilon=1e-2, window=1, selector="nearest"):
    return run_consensus(
        **build_dbac_execution(
            n=n,
            f=f,
            epsilon=epsilon,
            seed=seed,
            window=window,
            selector=selector,
            byzantine_factory=lambda node: STRATEGIES[strategy_name](),
        )
    )


class TestBoundaryCorrectness:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_safe_against_every_strategy_n6(self, strategy):
        report = run_dbac(6, 1, strategy, seed=1)
        assert report.terminated, report.summary()
        assert report.epsilon_agreement
        # Validity against fault-free inputs only.
        honest = [report.inputs[v] for v in sorted(report.outputs)]
        lo, hi = min(honest), max(honest)
        for value in report.outputs.values():
            assert lo - 1e-9 <= value <= hi + 1e-9

    @pytest.mark.parametrize("strategy", ["extreme", "liar"])
    def test_safe_at_n11_f2(self, strategy):
        report = run_dbac(11, 2, strategy, seed=2)
        assert report.terminated and report.epsilon_agreement, report.summary()

    @pytest.mark.parametrize("window", [1, 3])
    def test_windows(self, window):
        report = run_dbac(6, 1, "extreme", seed=3, window=window)
        assert report.terminated and report.epsilon_agreement

    def test_promise_verified(self):
        report = run_dbac(6, 1, "extreme", seed=4)
        assert report.dynadegree_promise == (1, dbac_degree(6, 1))
        assert report.dynadegree_verified is True


class TestValidityUnderAttack:
    def test_wild_byzantine_values_are_contained(self):
        # Byzantine nodes scream 1e6; fault-free inputs live in [0, 1].
        n, f = 6, 1
        ports = random_ports(n, child_rng(5, "ports"))
        inputs = spawn_inputs(5, n)
        plan = FaultPlan(
            n, byzantine={5: FixedValueByzantine(1e6, phase_mode="track")}
        )
        procs = {
            v: DBACProcess(n, f, inputs[v], ports.self_port(v), end_phase=8)
            for v in plan.non_byzantine
        }
        report = run_consensus(
            procs,
            RotatingQuorumAdversary(dbac_degree(n, f), selector="nearest"),
            ports,
            epsilon=1e-2,
            f=f,
            fault_plan=plan,
            stop_mode="output",
            max_rounds=300,
        )
        assert report.terminated
        honest_hi = max(inputs[v] for v in plan.non_byzantine)
        for value in report.outputs.values():
            assert value <= honest_hi + 1e-9


class TestConvergenceRateBound:
    def test_measured_rate_within_theorem7_bound(self):
        for seed in range(4):
            report = run_dbac(6, 1, "extreme", seed=seed, epsilon=1e-3)
            bound = dbac_convergence_rate(6)
            for rate in report.convergence_rates:
                assert rate <= bound + 1e-9

    def test_typical_rate_is_half_not_the_bound(self):
        # The 1 - 2^-n bound is loose: measured contraction sits near
        # 1/2 -- the observation experiment E5 quantifies.
        report = run_dbac(6, 1, "extreme", seed=9, epsilon=1e-3)
        rates = report.convergence_rates
        assert rates and max(rates) <= 0.75


class TestOutputModeTermination:
    def test_terminates_at_explicit_end_phase(self):
        n, f = 6, 1
        ports = random_ports(n, child_rng(21, "ports"))
        inputs = spawn_inputs(21, n)
        plan = FaultPlan(n, byzantine={5: ExtremeByzantine()})
        procs = {
            v: DBACProcess(n, f, inputs[v], ports.self_port(v), end_phase=6)
            for v in plan.non_byzantine
        }
        report = run_consensus(
            procs,
            RotatingQuorumAdversary(dbac_degree(n, f)),
            ports,
            epsilon=1.0,  # judged loosely; we only check termination here
            f=f,
            fault_plan=plan,
            stop_mode="output",
            max_rounds=200,
        )
        assert report.terminated
        assert all(p.phase == 6 for p in procs.values())

    def test_no_jumping_even_when_far_behind(self):
        # A node fed only far-future phases advances one phase per
        # quorum, never by copying.
        proc = DBACProcess(6, 1, 0.5, 0, end_phase=50)
        from repro.sim.messages import StateMessage
        from repro.sim.node import Delivery

        batch = [Delivery(port, StateMessage(0.9, 40)) for port in range(1, 5)]
        proc.deliver(batch)
        assert proc.phase == 1  # one quorum -> one phase, no jump
