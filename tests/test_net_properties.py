"""Unit tests for graph reachability and prior stability properties."""

import pytest

from repro.net.dynamic import DynamicGraph
from repro.net.graph import DirectedGraph
from repro.net.properties import (
    is_rooted_every_round,
    is_t_interval_connected,
    property_profile,
    rooted_rounds,
)


def trace_from(graphs):
    dyn = DynamicGraph(graphs[0].n)
    for g in graphs:
        dyn.record(g)
    return dyn


class TestReachability:
    def test_reachable_from_follows_direction(self):
        g = DirectedGraph(4, [(0, 1), (1, 2)])
        assert g.reachable_from(0) == {0, 1, 2}
        assert g.reachable_from(2) == {2}

    def test_source_validated(self):
        with pytest.raises(ValueError, match="out of range"):
            DirectedGraph(3).reachable_from(5)

    def test_roots_of_star(self):
        star = DirectedGraph(4, [(0, 1), (0, 2), (0, 3)])
        assert star.roots() == {0}
        assert star.has_root()

    def test_roots_of_complete_graph(self):
        g = DirectedGraph.complete(4)
        assert g.roots() == frozenset(range(4))

    def test_no_root(self):
        g = DirectedGraph(4, [(0, 1), (2, 3)])
        assert not g.has_root()

    def test_strong_connectivity(self):
        cycle = DirectedGraph(3, [(0, 1), (1, 2), (2, 0)])
        assert cycle.is_strongly_connected()
        path = DirectedGraph(3, [(0, 1), (1, 2)])
        assert not path.is_strongly_connected()
        assert DirectedGraph(1).is_strongly_connected()


class TestRootedEveryRound:
    def test_all_rooted(self):
        trace = trace_from([
            DirectedGraph(3, [(0, 1), (0, 2)]),
            DirectedGraph(3, [(1, 0), (1, 2)]),
        ])
        assert is_rooted_every_round(trace)
        assert rooted_rounds(trace) == [True, True]

    def test_one_unrooted_round(self):
        trace = trace_from([
            DirectedGraph(3, [(0, 1), (0, 2)]),
            DirectedGraph(3),  # empty: nobody reaches anyone
        ])
        assert not is_rooted_every_round(trace)
        assert rooted_rounds(trace) == [True, False]

    def test_figure1_has_unrooted_rounds(self):
        # The Figure 1 adversary's odd rounds are empty -- the paper's
        # point that dynaDegree permits root-free rounds.
        even = DirectedGraph(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        trace = trace_from([even, DirectedGraph(3)])
        assert not is_rooted_every_round(trace)


class TestTIntervalConnectivity:
    def test_stable_bidirectional_path_is_connected(self):
        path = DirectedGraph(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        trace = trace_from([path] * 4)
        assert is_t_interval_connected(trace, 1)
        assert is_t_interval_connected(trace, 4)

    def test_one_directional_edges_do_not_count(self):
        # T-interval connectivity assumes bidirectional links; a
        # one-way star never connects after symmetrization.
        star = DirectedGraph(3, [(0, 1), (0, 2)])
        trace = trace_from([star] * 3)
        assert not is_t_interval_connected(trace, 1)

    def test_alternating_links_break_stability(self):
        # Each round is connected, but no *stable* subgraph spans a
        # 2-round window: edges alternate.
        a = DirectedGraph(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        b = DirectedGraph(3, [(0, 2), (2, 0), (2, 1), (1, 2)])
        trace = trace_from([a, b, a, b])
        assert is_t_interval_connected(trace, 1)
        assert not is_t_interval_connected(trace, 2)

    def test_short_trace_vacuous(self):
        trace = trace_from([DirectedGraph(3)])
        assert is_t_interval_connected(trace, 5)

    def test_window_validated(self):
        trace = trace_from([DirectedGraph(3)])
        with pytest.raises(ValueError, match="T must be >= 1"):
            is_t_interval_connected(trace, 0)


class TestPropertyProfile:
    def test_profile_shape(self):
        path = DirectedGraph(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        trace = trace_from([path] * 3)
        profile = property_profile(trace, windows=[1, 2])
        assert profile["rounds"] == 3
        assert profile["rooted_every_round"] is True
        assert profile["rooted_fraction"] == 1.0
        assert profile["t_interval_connected"] == {1: True, 2: True}

    def test_empty_trace(self):
        profile = property_profile(DynamicGraph(3), windows=[1])
        assert profile["rooted_every_round"] is True
        assert profile["rooted_fraction"] == 1.0
