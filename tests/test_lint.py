"""The lint framework against its fixture corpus and the real tree.

Three layers of guarantees:

1. every shipped rule fires on its known-bad corpus snippet and stays
   silent on the known-good twin (``tests/lint_corpus/``);
2. the suppression mechanism works end to end: reasons are mandatory,
   unknown ids and stale suppressions are findings themselves, and a
   valid suppression actually silences the rule it names;
3. the real ``src/`` tree lints clean with the full rule set -- the
   same gate CI enforces -- and the CLI/JSON surfaces behave.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import DEFAULT_CONFIG, all_rules, lint_source, run_lint
from repro.lint.engine import module_name_for, select_rules
from repro.lint.report import render_json

REPO = Path(__file__).resolve().parent.parent
CORPUS = Path(__file__).resolve().parent / "lint_corpus"

CHECKER_RULES = [r.id for r in all_rules() if not r.is_meta]


def lint_with(source: str, rule_id: str, path: str = "<corpus>") -> list:
    """Run exactly one rule over ``source`` (suppressions still apply)."""
    rules, _ = select_rules(select=[rule_id])
    return lint_source(source, path=path, rules=rules, restricted=True)


def corpus(rule_id: str, kind: str) -> str:
    path = CORPUS / f"{rule_id.replace('-', '_')}_{kind}.py"
    assert path.is_file(), f"missing corpus file for {rule_id}: {path.name}"
    return path.read_text()


@pytest.mark.parametrize("rule_id", CHECKER_RULES)
def test_rule_fires_on_known_bad(rule_id):
    findings = lint_with(corpus(rule_id, "bad"), rule_id)
    assert findings, f"{rule_id} stayed silent on its known-bad snippet"
    assert {f.rule_id for f in findings} == {rule_id}


@pytest.mark.parametrize("rule_id", CHECKER_RULES)
def test_rule_silent_on_known_good(rule_id):
    findings = lint_with(corpus(rule_id, "good"), rule_id)
    assert findings == [], (
        f"{rule_id} fired on its known-good twin: "
        + "; ".join(f"{f.line}: {f.message}" for f in findings)
    )


def test_known_bad_finding_counts():
    """Each bad file trips its rule at every seeded violation site."""
    expected = {
        "set-iteration": 4,
        "unseeded-random": 4,
        "id-ordering": 4,  # the id()<id() compare flags both operands
        "time-env": 4,
        "topology-mutation": 4,
        "plan-mutation": 5,
        "layering": 2,
        "numpy-guard": 1,
        "hot-import": 1,
        "observer-readonly": 6,
        "worker-closure": 4,  # incl. the pool= dispatch site
        "arena-readonly": 4,
        "registry-registration": 4,  # 2 computed literals + 2 buried calls
        "service-readonly": 4,  # 3 module-level + 1 function-local import
    }
    counts = {
        rule_id: len(lint_with(corpus(rule_id, "bad"), rule_id))
        for rule_id in CHECKER_RULES
    }
    assert counts == expected


# -- suppressions ----------------------------------------------------------


def test_suppression_silences_the_named_rule():
    source = (
        "# lint-corpus-module: repro.core.widget\n"
        "def f(items):\n"
        "    # lint: ignore[set-iteration] — order provably irrelevant here\n"
        "    return [x for x in set(items)]\n"
    )
    assert lint_with(source, "set-iteration") == []


def test_trailing_suppression_and_other_lines_still_checked():
    source = (
        "# lint-corpus-module: repro.core.widget\n"
        "def f(items):\n"
        "    a = [x for x in set(items)]  # lint: ignore[set-iteration] — canonicalized below\n"
        "    b = [x for x in set(items)]\n"
        "    return a, b\n"
    )
    findings = lint_with(source, "set-iteration")
    assert [f.line for f in findings] == [4]


def test_suppression_without_reason_is_a_finding():
    source = "x = 1  # lint: ignore[set-iteration]\n"
    findings = lint_source(source, module="repro.core.widget")
    assert any(f.rule_id == "bad-suppression" for f in findings)


def test_suppression_with_unknown_rule_is_a_finding():
    source = "x = 1  # lint: ignore[no-such-rule] — whatever\n"
    findings = lint_source(source, module="repro.core.widget")
    assert any(
        f.rule_id == "bad-suppression" and "no-such-rule" in f.message
        for f in findings
    )


def test_unused_suppression_is_a_finding_on_full_runs():
    source = "x = 1  # lint: ignore[set-iteration] — nothing here fires\n"
    findings = lint_source(source, module="repro.core.widget")
    assert [f.rule_id for f in findings] == ["unused-suppression"]


def test_unused_suppression_not_reported_on_restricted_runs():
    source = "x = 1  # lint: ignore[set-iteration] — nothing here fires\n"
    assert lint_with(source, "layering") == []


def test_syntax_error_is_reported_not_raised():
    findings = lint_source("def broken(:\n", module="repro.core.widget")
    assert [f.rule_id for f in findings] == ["syntax-error"]


# -- the real tree ---------------------------------------------------------


def test_src_tree_is_clean():
    """The CI gate, inside tier-1: full rule set over src/, zero findings."""
    result = run_lint([REPO / "src"])
    assert result.files_checked > 60
    assert result.findings == [], "\n".join(
        f"{f.path}:{f.line}: [{f.rule_id}] {f.message}" for f in result.findings
    )


def test_every_src_suppression_carries_a_reason():
    from repro.lint.suppress import scan

    for path in sorted((REPO / "src").rglob("*.py")):
        suppressions, errors = scan(path.read_text())
        assert errors == [], f"{path}: {errors}"
        for supp in suppressions:
            assert supp.reason, f"{path}:{supp.line} has a reasonless suppression"


def test_module_name_mapping():
    assert module_name_for(REPO / "src/repro/sim/engine.py") == "repro.sim.engine"
    assert module_name_for(REPO / "src/repro/__init__.py") == "repro"
    assert module_name_for(REPO / "tools/check_docs.py") == "check_docs"


def test_layering_flags_unassigned_modules():
    findings = lint_source("x = 1\n", module="repro.mystery.widget")
    assert any(
        f.rule_id == "layering" and "not assigned" in f.message for f in findings
    )


# -- registry / reporting / CLI -------------------------------------------


def test_registry_ids_are_kebab_case_and_documented():
    for entry in all_rules():
        assert entry.id == entry.id.lower()
        assert entry.summary and entry.invariant


def test_config_layers_cover_every_src_module():
    from repro.lint.rules.imports import _layer_of

    for path in sorted((REPO / "src").rglob("*.py")):
        module = module_name_for(path)
        assert _layer_of(module, DEFAULT_CONFIG) is not None, module


def test_json_report_schema():
    result = run_lint([REPO / "src" / "repro" / "net"])
    payload = json.loads(render_json(result))
    assert payload["version"] == 1
    assert payload["ok"] is True
    assert payload["files_checked"] == len(
        list((REPO / "src" / "repro" / "net").rglob("*.py"))
    )
    assert payload["findings"] == []
    assert "layering" in payload["rules_run"]


def _run_cli(*args: str, cwd: Path = REPO) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO / "src")},
    )


def test_cli_clean_run_exits_zero(tmp_path):
    out_file = tmp_path / "report.json"
    proc = _run_cli("--format", "json", "--out", str(out_file), "src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro.lint: OK" in proc.stdout
    payload = json.loads(out_file.read_text())
    assert payload["ok"] is True


def test_cli_findings_exit_one(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(corpus("set-iteration", "bad"))
    proc = _run_cli(str(bad))
    assert proc.returncode == 1
    assert "[set-iteration]" in proc.stdout


def test_cli_unknown_rule_exits_two():
    proc = _run_cli("--select", "no-such-rule", "src")
    assert proc.returncode == 2
    assert "unknown rule id" in proc.stderr


def test_cli_missing_path_exits_two():
    proc = _run_cli("definitely/not/here")
    assert proc.returncode == 2


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for entry in all_rules():
        assert entry.id in proc.stdout
