"""Registry mechanics: versioning, validation, and proved openness.

The registry's contract has three parts. *Versioning*: ``(kind, name,
version)`` keys are immutable -- re-registering raises, old versions
stay resolvable, ``version=None`` takes the latest. *Validation*:
declared :class:`ParamSpec`s gate every resolved parameter with
field-named errors. *Openness*: a family registered through nothing
but the public API resolves, runs, and sweeps exactly like the
built-ins -- including spec-driven :class:`repro.bench.sweep.Sweep`
runs and pickled dispatch.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.bench.sweep import Sweep
from repro.scenario import (
    AlgorithmFamily,
    ParamSpec,
    SpecError,
    declare_adversary,
    lookup,
    register_algorithm,
    resolve,
    resolve_trial,
    run_spec_trial,
    spec_for,
    unregister,
)
from repro.scenario.registry import MISSING, validate_params
from repro.workloads import run_dac_trial


# -- a toy family, registered only through the public API ------------------


def run_toysum_trial(seed=0, n=4, scale=1.0, max_rounds=16):
    """Deterministic stand-in trial: no engine, just seeded arithmetic."""
    rng = random.Random(seed)
    total = sum(rng.random() for _ in range(n)) * scale
    return {"terminated": True, "rounds": min(n, max_rounds), "value": total}


@pytest.fixture
def toy_entry():
    @register_algorithm("toysum", version=1, description="test-only family")
    class ToySumFamily(AlgorithmFamily):
        params = (
            ParamSpec("n", "int"),
            ParamSpec("scale", "float", default=1.0),
            ParamSpec("max_rounds", "int", default=16),
        )
        components = {}
        trial = staticmethod(run_toysum_trial)

    try:
        yield lookup("algorithm", "toysum")
    finally:
        unregister("algorithm", "toysum", 1)


# -- versioning ------------------------------------------------------------


def test_duplicate_registration_raises(toy_entry):
    with pytest.raises(ValueError, match="bump the version"):

        @register_algorithm("toysum", version=1)
        class Clone(AlgorithmFamily):
            trial = staticmethod(run_toysum_trial)


def test_versions_coexist_and_latest_wins():
    declare_adversary("toy-adv", version=1, params=(ParamSpec("k", "int"),))
    declare_adversary("toy-adv", version=2)
    try:
        assert lookup("adversary", "toy-adv").version == 2
        assert lookup("adversary", "toy-adv", 1).version == 1
        assert lookup("adversary", "toy-adv", 1).param("k") is not None
        with pytest.raises(SpecError) as err:
            lookup("adversary", "toy-adv", 3)
        assert err.value.field == "adversary"
        assert "1, 2" in str(err.value)
    finally:
        unregister("adversary", "toy-adv", 1)
        unregister("adversary", "toy-adv", 2)


def test_unknown_name_lists_what_is_registered():
    with pytest.raises(SpecError) as err:
        lookup("adversary", "nosuch", field="adversary")
    assert err.value.field == "adversary"
    assert "mobile" in str(err.value) and "quorum" in str(err.value)


def test_duplicate_param_declaration_raises():
    with pytest.raises(ValueError, match="twice"):
        declare_adversary(
            "toy-dup", params=(ParamSpec("k", "int"), ParamSpec("k", "str"))
        )


# -- ParamSpec validation --------------------------------------------------


def test_float_param_accepts_int_and_canonicalizes():
    value = ParamSpec("x", "float").check("a.x", 3)
    assert value == 3.0 and isinstance(value, float)


def test_int_param_rejects_bool():
    with pytest.raises(SpecError) as err:
        ParamSpec("x", "int").check("a.x", True)
    assert err.value.field == "a.x"


def test_choices_are_enforced():
    spec = ParamSpec("x", "str", choices=("a", "b"))
    assert spec.check("a.x", "b") == "b"
    with pytest.raises(SpecError, match="not one of"):
        spec.check("a.x", "c")


def test_nullable_admits_none_nonnullable_rejects():
    assert ParamSpec("x", "int", nullable=True).check("a.x", None) is None
    with pytest.raises(SpecError, match="not nullable"):
        ParamSpec("x", "int").check("a.x", None)


def test_unknown_type_is_a_registration_error():
    with pytest.raises(ValueError, match="unknown parameter type"):
        ParamSpec("x", "complex")


def test_validate_params_fills_defaults_and_names_fields(toy_entry):
    filled = validate_params(toy_entry, {"n": 5}, prefix="algorithm")
    assert filled == {"n": 5, "scale": 1.0, "max_rounds": 16}
    with pytest.raises(SpecError) as err:
        validate_params(toy_entry, {"n": 5, "zap": 1}, prefix="algorithm")
    assert err.value.field == "algorithm.zap"
    with pytest.raises(SpecError) as err:
        validate_params(toy_entry, {}, prefix="algorithm")
    assert err.value.field == "algorithm.n"


def test_validate_params_defaults_override(toy_entry):
    filled = validate_params(
        toy_entry, {"n": 4}, prefix="algorithm", defaults_override={"scale": 2.5}
    )
    assert filled["scale"] == 2.5
    # An explicit value still beats the override.
    filled = validate_params(
        toy_entry,
        {"n": 4, "scale": 3.0},
        prefix="algorithm",
        defaults_override={"scale": 2.5},
    )
    assert filled["scale"] == 3.0


def test_missing_sentinel_is_not_a_value():
    assert ParamSpec("x", "int").required
    assert not ParamSpec("x", "int", default=0).required
    assert ParamSpec("x", "int", default=MISSING).required


# -- openness: the toy family behaves exactly like a built-in --------------


def test_dynamic_family_resolves_and_runs(toy_entry):
    resolved = resolve("algorithm: toysum@1(n=6, scale=2.0); seed: 3; rounds: 4")
    assert resolved.trial_fn is run_toysum_trial
    assert resolved.params == {"n": 6, "scale": 2.0, "max_rounds": 4}
    assert resolved.run() == run_toysum_trial(seed=3, n=6, scale=2.0, max_rounds=4)
    canonical = resolved.canonical_spec()
    assert resolve(canonical.encode()).canonical_spec() == canonical


def test_dynamic_family_rejects_undeclared_sections(toy_entry):
    with pytest.raises(SpecError) as err:
        resolve("algorithm: toysum@1(n=4); network: dynadegree@1")
    assert err.value.field == "network"


def test_spec_for_routes_flat_params(toy_entry):
    spec = spec_for("toysum", {"n": 5, "scale": 0.5}, seed=9)
    assert spec.algorithm.kwargs() == {"n": 5, "scale": 0.5}
    assert spec.seed == 9
    assert resolve(spec).run()["rounds"] == 5


def test_sweep_accepts_spec_for_dynamic_family(toy_entry):
    text = "algorithm: toysum@1(n=4, scale=2.0)"
    sweep = Sweep(grid={"n": [4, 6]}, repeats=2, seed0=5)
    records = sweep.run(text)
    assert [rec.param("n") for rec in records] == [4, 4, 6, 6]
    for rec in records:
        # Cells override the spec key-by-key; untouched spec params ride
        # along into every cell, exactly as documented.
        assert rec.param("scale") == 2.0
        assert rec.result == run_toysum_trial(seed=rec.seed, **dict(rec.params))


# -- spec-driven sweeps match direct-function sweeps -----------------------


def test_sweep_spec_records_match_direct_fn():
    text = "algorithm: dac@1(n=5); rounds: 300"
    fn, base = resolve_trial(text)
    assert fn is run_dac_trial
    spec_sweep = Sweep(grid={"n": [5, 7]}, repeats=2, seed0=11)
    direct_sweep = Sweep(grid={"n": [5, 7]}, repeats=2, seed0=11)
    spec_records = spec_sweep.run(text)
    direct_records = direct_sweep.run(
        run_dac_trial, batch_fn=run_dac_trial.batch_fn
    )
    assert len(spec_records) == len(direct_records) == 4
    for spec_rec in spec_records:
        params = dict(spec_rec.params)
        # Spec-driven cells carry the full resolved parameter set; the
        # result must equal calling the trial with those kwargs directly.
        assert params["max_rounds"] == 300
        assert spec_rec.result == run_dac_trial(seed=spec_rec.seed, **params)


def test_resolve_trial_keeps_batch_attachments():
    fn, base = resolve_trial("algorithm: dac@1(n=5)")
    assert fn.batch_fn is run_dac_trial.batch_fn
    assert base["n"] == 5 and base["f"] == 2


# -- picklability ----------------------------------------------------------


def test_run_spec_trial_is_picklable():
    clone = pickle.loads(pickle.dumps(run_spec_trial))
    text = "algorithm: dac@1(n=5); rounds: 200"
    assert clone(text, 7) == run_spec_trial(text, 7)


def test_resolved_trial_fns_are_picklable():
    fn, base = resolve_trial("algorithm: averaging@1(n=5); rounds: 6")
    clone = pickle.loads(pickle.dumps(fn))
    assert clone(seed=3, **base) == fn(seed=3, **base)
