"""Determinism guarantees of the batched execution subsystem.

Three contracts make ``batch=B`` a pure speed knob:

1. :class:`repro.sim.batch.BatchEngine` and
   :class:`repro.sim.batch.ByzBatchEngine` produce **bit-identical
   final states and round counts** to ``B`` serial ``Engine`` runs of
   the same lanes -- full ``state_key`` equality, not just outputs --
   across the DAC (crash), DBAC (Byzantine) and mobile-omission
   families;
2. the numpy backend and the always-importable pure-Python fallback
   produce identical lane results (asserted when numpy is present),
   and lane compaction / vector-width chunking never change results;
3. ``Sweep.run(workers=4, batch=4)`` records are identical, element
   for element, to ``Sweep.run(workers=1, batch=1)`` records.
"""

import pytest

from repro.bench.sweep import Sweep
from repro.sim.batch import (
    BatchEngine,
    ByzBatchEngine,
    numpy_available,
    run_byz_batch,
    run_dac_batch,
    run_dbac_batch,
)
from repro.sim.engine import Engine
from repro.sim.parallel import (
    TrialSpec,
    resolve_batch,
    run_trials,
    set_default_batch,
)
from repro.workloads import (
    TRIAL_BYZANTINE_STRATEGIES,
    build_dac_execution,
    build_dbac_execution,
    run_byz_trial,
    run_byz_trial_batch,
    run_dac_trial,
    run_dac_trial_batch,
    run_dbac_trial,
    run_dbac_trial_batch,
)
from tests.helpers import (
    assert_equivalent_runs,
    batch_executor,
    serial_executor,
)

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

# (n, f, window): fault-free, crash-fault, multi-round windows.
GRIDS = [(9, 0, 1), (9, 4, 1), (9, 4, 3), (12, 5, 2), (5, 2, 1)]

# (n, f, window, selector, strategy): the Byzantine lane families --
# value-dependent nearest selection, memoized rotate, windowed
# delivery, every vectorizable strategy, and the f=0 degenerate case.
BYZ_GRIDS = [
    (11, 2, 1, "nearest", "extreme"),
    (11, 2, 3, "nearest", "pin-high"),
    (11, 2, 2, "rotate", "extreme"),
    (6, 1, 1, "nearest", "phase-liar"),
    (7, 0, 1, "nearest", "extreme"),
    (11, 2, 1, "nearest", "pin-low"),
]

MOBILE_MODES = ["block_min", "block_max", "rotate", "none"]


def run_serial_dbac_lane(
    n, f, seed, window, selector, strategy, epsilon=1e-3, max_rounds=50_000
):
    """One serial oracle-mode DBAC run of the lane the batch engine claims."""
    factory = TRIAL_BYZANTINE_STRATEGIES[strategy]
    kwargs = build_dbac_execution(
        n=n,
        f=f,
        epsilon=epsilon,
        seed=seed,
        window=window,
        selector=selector,
        byzantine_factory=lambda node: factory(),
    )
    engine = Engine(
        kwargs["processes"],
        kwargs["adversary"],
        kwargs["ports"],
        fault_plan=kwargs["fault_plan"],
        f=kwargs["f"],
        seed=kwargs["seed"],
        record_trace=False,
    )
    result = engine.run(
        max_rounds, stop_when=lambda eng: eng.fault_free_range() <= epsilon
    )
    return engine, result


class TestBatchMatchesSerial:
    @pytest.mark.parametrize("n,f,window", GRIDS)
    def test_finals_and_rounds_bit_identical(self, n, f, window):
        # The shared harness: serial sweep (reference) == python
        # backend == numpy backend (when installed), all 8 seeds as ONE
        # multi-lane batch per backend so lock-step lane interplay is
        # exercised; full per-node state keys -- value, phase, port bit
        # vector, extremes, output -- the strongest equality available.
        assert_equivalent_runs(
            [{"family": "dac", "n": n, "f": f, "window": window,
              "seeds": tuple(range(8))}],
            {
                "serial-fast": serial_executor(),
                "batch-python": batch_executor("python"),
                "batch-numpy": batch_executor("numpy"),
            },
        )

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    @pytest.mark.parametrize("n,f,window", GRIDS)
    def test_numpy_backend_matches_python_fallback(self, n, f, window):
        seeds = [3, 11, 20, 21, 22, 23, 100, 101]
        assert run_dac_batch(
            n, f, seeds, window=window, backend="numpy"
        ) == run_dac_batch(n, f, seeds, window=window, backend="python")

    def test_lane_order_is_seed_order_not_finish_order(self):
        # Lanes terminate at different rounds; results must still come
        # back in seeds order.
        seeds = [7, 0, 13, 5]
        lanes = run_dac_batch(9, 4, seeds, window=2)
        assert [lane.seed for lane in lanes] == seeds
        assert len({lane.rounds for lane in lanes}) >= 1  # all finalized
        assert all(lane.stopped for lane in lanes)

    def test_backend_resolution_and_validation(self):
        engine = BatchEngine(9, 4, [0], backend="auto")
        expected = "numpy" if numpy_available() else "python"
        assert engine.backend == expected
        assert engine.batch_size == 1
        # Value-dependent selectors are not vectorizable; auto falls
        # back to the python backend, an explicit numpy request errors.
        assert BatchEngine(9, 4, [0], selector="nearest").backend == "python"
        with pytest.raises(ValueError, match="selector|numpy"):
            BatchEngine(9, 4, [0], selector="nearest", backend="numpy")
        with pytest.raises(ValueError, match="backend"):
            BatchEngine(9, 4, [0], backend="cuda")
        with pytest.raises(ValueError, match="seed"):
            BatchEngine(9, 4, [])
        with pytest.raises(ValueError, match="2f"):
            BatchEngine(8, 4, [0])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_max_rounds_cap_reports_unstopped_lanes(self, backend):
        # A cap far below termination: every lane must report exactly
        # the cap and stopped=False, like Engine.run does.
        lanes = run_dac_batch(9, 4, [0, 1], max_rounds=3, backend=backend)
        assert [lane.rounds for lane in lanes] == [3, 3]
        assert not any(lane.stopped for lane in lanes)
        assert all(lane.outputs == {} for lane in lanes)


class TestBatchedTrialFunction:
    def test_batched_summaries_equal_serial_summaries(self):
        seeds = list(range(6))
        batched = run_dac_trial_batch(n=9, window=2, seeds=seeds)
        assert batched == [run_dac_trial(n=9, window=2, seed=s) for s in seeds]

    def test_non_fast_batch_delegates_to_serial_trials(self):
        seeds = [0, 1]
        assert run_dac_trial_batch(n=5, fast=False, seeds=seeds) == [
            run_dac_trial(n=5, fast=False, seed=s) for s in seeds
        ]

    def test_trial_carries_its_batched_form(self):
        assert run_dac_trial.batch_fn is run_dac_trial_batch


def echo_trial(seed, **params):
    return {"seed": seed, **params}


def echo_trial_batch(seeds=(), **params):
    return [{"seed": seed, **params} for seed in seeds]


def short_batch(seeds=(), **params):
    return [{"seed": seeds[0], **params}]  # drops all but the first seed


class TestRunTrialsBatching:
    def make_specs(self, count, param=1):
        return [TrialSpec((("p", param),), seed=i) for i in range(count)]

    def test_batched_results_keep_spec_order(self):
        specs = self.make_specs(10)
        results = run_trials(
            echo_trial, specs, workers=1, batch=4, batch_fn=echo_trial_batch
        )
        assert results == [echo_trial(seed=i, p=1) for i in range(10)]

    def test_batching_groups_only_consecutive_equal_params(self):
        specs = [
            TrialSpec((("p", 1),), seed=0),
            TrialSpec((("p", 1),), seed=1),
            TrialSpec((("p", 2),), seed=2),
            TrialSpec((("p", 1),), seed=3),
        ]
        results = run_trials(
            echo_trial, specs, workers=1, batch=8, batch_fn=echo_trial_batch
        )
        assert [(r["p"], r["seed"]) for r in results] == [(1, 0), (1, 1), (2, 2), (1, 3)]

    def test_batch_composes_with_workers(self):
        specs = self.make_specs(12)
        assert run_trials(
            echo_trial, specs, workers=3, batch=2, batch_fn=echo_trial_batch
        ) == [echo_trial(seed=i, p=1) for i in range(12)]

    def test_explicit_batch_without_batch_fn_raises(self):
        with pytest.raises(ValueError, match="batched trial function"):
            run_trials(echo_trial, self.make_specs(4), workers=1, batch=4)

    def test_default_batch_degrades_for_unbatched_functions(self):
        set_default_batch(4)
        try:
            assert resolve_batch(None) == 4
            # echo_trial has no batch_fn: the process-wide default must
            # not break it, just run unbatched.
            results = run_trials(echo_trial, self.make_specs(5), workers=1, batch=None)
            assert [r["seed"] for r in results] == list(range(5))
        finally:
            set_default_batch(1)
        assert resolve_batch(None) == 1

    def test_batch_size_validation(self):
        with pytest.raises(ValueError, match="batch"):
            resolve_batch(0)
        with pytest.raises(ValueError, match="batch"):
            set_default_batch(0)

    def test_wrong_length_batch_results_are_rejected(self):
        with pytest.raises(ValueError, match="one result per seed"):
            run_trials(echo_trial, self.make_specs(4), workers=1, batch=4,
                       batch_fn=short_batch)


class TestSweepBatchIdentity:
    def test_workers_4_batch_4_records_identical_to_serial(self):
        grid = {"n": [5, 7], "window": [1, 2]}
        serial = Sweep(grid=grid, repeats=4)
        composed = Sweep(grid=grid, repeats=4)
        serial.run(run_dac_trial, workers=1, batch=1)
        composed.run(run_dac_trial, workers=4, batch=4)
        assert serial.records == composed.records
        assert all(record.result["correct"] for record in composed.records)

    def test_sweep_discovers_the_batched_form_from_the_trial(self):
        grid = {"n": [9]}
        explicit = Sweep(grid=grid, repeats=4)
        implicit = Sweep(grid=grid, repeats=4)
        explicit.run(run_dac_trial, batch=4, batch_fn=run_dac_trial_batch)
        implicit.run(run_dac_trial, batch=4)  # run_dac_trial.batch_fn
        assert explicit.records == implicit.records


class TestByzBatchMatchesSerial:
    """DBAC / Byzantine lanes: bit-identity of ByzBatchEngine vs serial."""

    @pytest.mark.parametrize("n,f,window,selector,strategy", BYZ_GRIDS)
    def test_dbac_finals_and_rounds_bit_identical(
        self, n, f, window, selector, strategy
    ):
        # The shared harness: serial sweep (reference) == python
        # backend == numpy backend (when installed), all 6 seeds as ONE
        # multi-lane batch per backend. Full per-node state keys --
        # value, phase, port bit vector, R_low / R_high recording
        # lists, output -- the strongest equality available; oracle
        # outputs (the fault-free states at stop) ride along.
        assert_equivalent_runs(
            [{
                "family": "dbac", "n": n, "f": f, "window": window,
                "selector": selector, "strategy": strategy,
                "seeds": tuple(range(6)),
            }],
            {
                "serial-fast": serial_executor(),
                "batch-python": batch_executor("python"),
                "batch-numpy": batch_executor("numpy"),
            },
        )

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    @pytest.mark.parametrize("n,f,window,selector,strategy", BYZ_GRIDS)
    def test_numpy_backend_matches_python_fallback(
        self, n, f, window, selector, strategy
    ):
        seeds = [3, 11, 20, 21, 100]
        assert run_dbac_batch(
            n, f, seeds, window=window, selector=selector, strategy=strategy,
            backend="numpy",
        ) == run_dbac_batch(
            n, f, seeds, window=window, selector=selector, strategy=strategy,
            backend="python",
        )

    def test_stored_count_invariant_backs_the_kernel_layout(self, monkeypatch):
        # The kernel reconstructs R_low/R_high from a flat stored-value
        # buffer indexed by DBACProcess.stored_count. Count the actual
        # _store calls of the current phase on a real mid-flight
        # execution and assert the documented invariant: one store per
        # accepted port (plus the phase-start self value), recording
        # lists exactly min(stores, f+1) long.
        from repro.core.dbac import DBACProcess

        stores_this_phase: dict[int, int] = {}
        real_store = DBACProcess._store
        real_reset = DBACProcess._reset

        def counting_store(self, incoming_value):
            stores_this_phase[id(self)] = stores_this_phase.get(id(self), 0) + 1
            real_store(self, incoming_value)

        def counting_reset(self):
            stores_this_phase[id(self)] = 0  # real_reset re-stores the self value
            real_reset(self)

        monkeypatch.setattr(DBACProcess, "_store", counting_store)
        monkeypatch.setattr(DBACProcess, "_reset", counting_reset)
        engine, _result = run_serial_dbac_lane(
            11, 2, seed=5, window=1, selector="nearest", strategy="extreme",
            epsilon=1e-9, max_rounds=7,
        )
        for process in engine.processes.values():
            low, high = process.recording_lists
            assert process.stored_count == stores_this_phase[id(process)]
            assert process.stored_count == process.received_count
            expected = min(process.stored_count, process.trim)
            assert len(low) == expected and len(high) == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_max_rounds_cap_reports_unstopped_lanes(self, backend):
        lanes = run_dbac_batch(
            11, 2, [0, 1], epsilon=1e-15, max_rounds=4, backend=backend
        )
        assert [lane.rounds for lane in lanes] == [4, 4]
        assert not any(lane.stopped for lane in lanes)
        for seed, lane in zip([0, 1], lanes):
            engine, result = run_serial_dbac_lane(
                11, 2, seed, 1, "nearest", "extreme", epsilon=1e-15, max_rounds=4
            )
            assert lane.state_keys == {
                node: process.state_key()
                for node, process in engine.processes.items()
            }

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_output_stop_mode_matches_serial_trials(self, backend):
        # Algorithm-local stopping: p_end is astronomically conservative
        # so cap tightly; summaries must equal the serial trial's.
        seeds = [0, 1, 2]
        batched = run_dbac_trial_batch(
            n=11, stop_mode="output", max_rounds=6, seeds=seeds
        )
        assert batched == [
            run_dbac_trial(n=11, stop_mode="output", max_rounds=6, seed=s)
            for s in seeds
        ]

    def test_random_strategy_and_selector_fall_back_to_python(self):
        assert ByzBatchEngine(11, 2, [0], strategy="random").backend == "python"
        assert ByzBatchEngine(11, 2, [0], selector="random").backend == "python"
        seeds = [0, 1]
        for kwargs in ({"strategy": "random"}, {"selector": "random"}):
            lanes = run_dbac_batch(11, 2, seeds, **kwargs)
            serial = [run_dbac_trial(n=11, f=2, seed=s, **kwargs) for s in seeds]
            assert [lane.rounds for lane in lanes] == [r["rounds"] for r in serial]

    def test_backend_resolution_and_validation(self):
        expected = "numpy" if numpy_available() else "python"
        assert ByzBatchEngine(11, 2, [0]).backend == expected
        if numpy_available():
            with pytest.raises(ValueError, match="strategy"):
                ByzBatchEngine(11, 2, [0], strategy="random", backend="numpy")
            with pytest.raises(ValueError, match="selector"):
                ByzBatchEngine(11, 2, [0], selector="random", backend="numpy")
        with pytest.raises(ValueError, match="backend"):
            ByzBatchEngine(11, 2, [0], backend="cuda")
        with pytest.raises(ValueError, match="seed"):
            ByzBatchEngine(11, 2, [])
        with pytest.raises(ValueError, match="5f"):
            ByzBatchEngine(10, 2, [0])
        with pytest.raises(ValueError, match="strategy"):
            ByzBatchEngine(11, 2, [0], strategy="nope")
        with pytest.raises(ValueError, match="stop_mode"):
            ByzBatchEngine(11, 2, [0], stop_mode="nope")
        with pytest.raises(ValueError, match="adversary"):
            ByzBatchEngine(11, 2, [0], adversary="nope")
        with pytest.raises(ValueError, match="fault-free"):
            ByzBatchEngine(8, 1, [0], adversary="mobile-rotate")
        with pytest.raises(ValueError, match="mobile mode"):
            ByzBatchEngine(8, None, [0], adversary="mobile-nope")
        with pytest.raises(ValueError, match="width"):
            ByzBatchEngine(11, 2, [0], width=0)


class TestMobileBatchMatchesSerial:
    """Mobile-omission lanes: the other run_byz_trial family."""

    @pytest.mark.parametrize("mode", MOBILE_MODES)
    def test_lanes_match_serial_engines_full_state(self, mode):
        # The shared harness, full state keys (strictly stronger than
        # the old picklable-summary comparison): serial sweep == both
        # batch backends on one 5-lane batch per backend.
        assert_equivalent_runs(
            [{"family": "mobile", "n": 8, "mode": mode, "seeds": tuple(range(5))}],
            {
                "serial-fast": serial_executor(),
                "batch-python": batch_executor("python"),
                "batch-numpy": batch_executor("numpy"),
            },
        )

    def test_batched_summaries_equal_serial_trial_summaries(self):
        seeds = list(range(3))
        lanes = run_byz_batch(8, None, seeds, adversary="mobile-block_min")
        serial = [
            run_byz_trial(n=8, adversary="mobile-block_min", seed=s) for s in seeds
        ]
        from repro.workloads import _lane_summary

        assert [_lane_summary(lane, 1e-3) for lane in lanes] == serial

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    @pytest.mark.parametrize("mode", MOBILE_MODES)
    def test_numpy_backend_matches_python_fallback(self, mode):
        seeds = [2, 7, 9]
        assert run_byz_batch(
            8, None, seeds, adversary=f"mobile-{mode}", backend="numpy"
        ) == run_byz_batch(
            8, None, seeds, adversary=f"mobile-{mode}", backend="python"
        )

    def test_victim_hook_matches_per_receiver_specification(self):
        # mobile_victims (what both the serial adversary and the numpy
        # kernel replicate) vs the retained per-receiver scan, on value
        # vectors with duplicated extremes (tie-breaking).
        from repro.adversary.mobile import MobileOmissionAdversary, mobile_victims

        tie_grids = [
            [0.5, 0.1, 0.1, 0.9, 0.9],
            [0.3, 0.3, 0.3],
            [1.0],
            [0.2, 0.8],
            [0.7, None, 0.1, 0.1],
        ]
        for values in tie_grids:
            n = len(values)
            for mode in ("block_min", "block_max"):
                adversary = MobileOmissionAdversary(mode)
                adversary.n = n

                class _View:
                    def value(self, node, _values=values):
                        return _values[node]

                spec = [
                    adversary._victim_sender(v, 0, _View()) for v in range(n)
                ]
                assert mobile_victims(mode, n, 0, list(values)) == spec, (
                    mode,
                    values,
                )


class TestNearestVectorization:
    """The stable-argsort nearest replication, ties included."""

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_vectorized_picks_match_selector_hook_on_tie_heavy_values(self):
        import numpy as np

        from repro.adversary.constrained import nearest_picks
        from repro.sim.batch import nearest_delivered

        n = 10
        byzantine = frozenset({8, 9})
        degree = 6
        remaining = degree - len(byzantine)
        # Crafted tie storms: duplicated values, symmetric distances
        # around a receiver, converged lanes where everything ties.
        value_rows = [
            [0.5, 0.25, 0.75, 0.5, 0.5, 0.25, 0.75, 0.1, 0.0, 1.0],
            [0.5] * 8 + [0.0, 1.0],
            [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.0, 1.0],
            [0.4, 0.6, 0.5, 0.5, 0.3, 0.7, 0.5, 0.5, 0.0, 1.0],
        ]
        values = np.array(value_rows)
        byz = np.array(sorted(byzantine), dtype=np.intp)
        delivered = nearest_delivered(values, byz, len(byzantine), remaining)
        for lane, row in enumerate(value_rows):
            spec_values = [
                None if u in byzantine else row[u] for u in range(n)
            ]
            picks = nearest_picks(n, tuple(range(n)), spec_values, byzantine, degree)
            for receiver in range(n):
                if receiver in byzantine:
                    continue  # kernel rows for Byzantine receivers are unused
                chosen = {u for u in range(n) if delivered[lane, receiver, u]}
                assert chosen == set(picks[receiver]), (lane, receiver)

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_tie_heavy_grid_stays_bit_identical(self):
        # Converged DBAC lanes are the real tie storm: after one
        # trimmed-midpoint update many honest nodes share a value, so
        # every later round breaks distance ties by node ID. A tiny
        # epsilon keeps the lanes in that regime for many rounds.
        seeds = list(range(4))
        lanes = run_dbac_batch(11, 2, seeds, epsilon=1e-12, backend="numpy")
        assert lanes == run_dbac_batch(11, 2, seeds, epsilon=1e-12, backend="python")
        for seed, lane in zip(seeds, lanes):
            engine, result = run_serial_dbac_lane(
                11, 2, seed, 1, "nearest", "extreme", epsilon=1e-12
            )
            assert lane.rounds == int(result)
            assert lane.state_keys == {
                node: process.state_key()
                for node, process in engine.processes.items()
            }


class TestLaneCompaction:
    """Compaction / width chunking: a pure scheduling knob."""

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    @pytest.mark.parametrize("width,compact", [
        (3, True), (3, False), (4, True), (1, True), (16, True), (16, False),
    ])
    def test_dbac_results_identical_at_any_width(self, width, compact):
        seeds = [5, 0, 13, 2, 7, 7, 1, 9, 4, 3, 11, 6, 8, 10, 12, 14]
        base = run_dbac_batch(11, 2, seeds, backend="numpy")
        assert run_dbac_batch(
            11, 2, seeds, width=width, compact=compact, backend="numpy"
        ) == base

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_compaction_on_off_equality_across_families(self):
        seeds = list(range(12))
        for kwargs in (
            {"adversary": "quorum"},
            {"adversary": "mobile-block_min"},
            {"adversary": "quorum", "window": 2},
        ):
            on = run_byz_batch(
                11, None if "mobile" in kwargs["adversary"] else 2, seeds,
                width=4, compact=True, **kwargs,
            )
            off = run_byz_batch(
                11, None if "mobile" in kwargs["adversary"] else 2, seeds,
                width=4, compact=False, **kwargs,
            )
            assert on == off, kwargs
            assert [lane.seed for lane in on] == seeds

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_refilled_rows_restart_from_round_zero(self):
        # Mixed caps: with width 2 and compaction, later seeds run in
        # rows freed by earlier lanes; their round counts must match
        # full-width runs exactly.
        seeds = list(range(8))
        full = run_dbac_batch(11, 2, seeds, backend="numpy")
        narrow = run_dbac_batch(11, 2, seeds, width=2, compact=True, backend="numpy")
        assert [lane.rounds for lane in narrow] == [lane.rounds for lane in full]
        assert narrow == full


class TestByzBatchedTrialFunctions:
    def test_dbac_batched_summaries_equal_serial_summaries(self):
        seeds = list(range(5))
        batched = run_dbac_trial_batch(n=11, window=2, seeds=seeds)
        assert batched == [
            run_dbac_trial(n=11, window=2, seed=s) for s in seeds
        ]

    def test_byz_batched_summaries_equal_serial_summaries(self):
        seeds = list(range(4))
        for adversary in ("quorum", "mobile-block_max"):
            batched = run_byz_trial_batch(n=7, adversary=adversary, seeds=seeds)
            assert batched == [
                run_byz_trial(n=7, adversary=adversary, seed=s) for s in seeds
            ]

    def test_non_fast_batch_delegates_to_serial_trials(self):
        seeds = [0, 1]
        assert run_dbac_trial_batch(
            n=6, fast=False, stop_mode="output", max_rounds=5, seeds=seeds
        ) == [
            run_dbac_trial(n=6, fast=False, stop_mode="output", max_rounds=5, seed=s)
            for s in seeds
        ]

    def test_trials_carry_their_batched_forms(self):
        assert run_dbac_trial.batch_fn is run_dbac_trial_batch
        assert run_byz_trial.batch_fn is run_byz_trial_batch

    def test_sweep_workers_and_batch_identical_for_dbac(self):
        grid = {"n": [6, 11], "window": [1, 2]}
        serial = Sweep(grid=grid, repeats=4)
        composed = Sweep(grid=grid, repeats=4)
        serial.run(run_dbac_trial, workers=1, batch=1)
        composed.run(run_dbac_trial, workers=4, batch=4)
        assert serial.records == composed.records
        assert all(record.result["correct"] for record in composed.records)

    def test_sweep_workers_and_batch_identical_for_byz_families(self):
        grid = {"n": [8], "adversary": ["quorum", "mobile-block_min", "mobile-rotate"]}
        serial = Sweep(grid=grid, repeats=3)
        composed = Sweep(grid=grid, repeats=3)
        serial.run(run_byz_trial, workers=1, batch=1)
        composed.run(run_byz_trial, workers=2, batch=3)
        assert serial.records == composed.records
