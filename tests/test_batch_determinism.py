"""Determinism guarantees of the batched execution subsystem.

Three contracts make ``batch=B`` a pure speed knob:

1. :class:`repro.sim.batch.BatchEngine` produces **bit-identical final
   states and round counts** to ``B`` serial ``Engine`` runs of the
   same lanes -- full ``state_key`` equality, not just outputs;
2. the numpy backend and the always-importable pure-Python fallback
   produce identical lane results (asserted when numpy is present);
3. ``Sweep.run(workers=4, batch=4)`` records are identical, element
   for element, to ``Sweep.run(workers=1, batch=1)`` records.
"""

import pytest

from repro.bench.sweep import Sweep
from repro.sim.batch import BatchEngine, numpy_available, run_dac_batch
from repro.sim.engine import Engine
from repro.sim.parallel import (
    TrialSpec,
    resolve_batch,
    run_trials,
    set_default_batch,
)
from repro.workloads import (
    build_dac_execution,
    run_dac_trial,
    run_dac_trial_batch,
)

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

# (n, f, window): fault-free, crash-fault, multi-round windows.
GRIDS = [(9, 0, 1), (9, 4, 1), (9, 4, 3), (12, 5, 2), (5, 2, 1)]


def run_serial_lane(n, f, seed, window):
    """One serial engine run of the exact lane the batch engine claims."""
    kwargs = build_dac_execution(n=n, f=f, seed=seed, window=window)
    engine = Engine(
        kwargs["processes"],
        kwargs["adversary"],
        kwargs["ports"],
        fault_plan=kwargs["fault_plan"],
        f=kwargs["f"],
        seed=kwargs["seed"],
        record_trace=False,
    )
    result = engine.run(kwargs["max_rounds"], stop_when=Engine.all_fault_free_output)
    return engine, result


class TestBatchMatchesSerial:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n,f,window", GRIDS)
    def test_finals_and_rounds_bit_identical(self, n, f, window, backend):
        seeds = list(range(8))
        lanes = run_dac_batch(n, f, seeds, window=window, backend=backend)
        assert [lane.seed for lane in lanes] == seeds
        for seed, lane in zip(seeds, lanes):
            engine, result = run_serial_lane(n, f, seed, window)
            assert lane.rounds == int(result)
            assert lane.stopped == result.stopped
            # Full per-node state keys: value, phase, port bit vector,
            # extremes, output -- the strongest equality available.
            assert lane.state_keys == {
                node: process.state_key()
                for node, process in engine.processes.items()
            }
            assert lane.outputs == {
                v: engine.processes[v].output()
                for v in engine.fault_plan.fault_free
                if engine.processes[v].has_output()
            }
            assert lane.inputs == {
                node: process.input_value
                for node, process in engine.processes.items()
            }

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    @pytest.mark.parametrize("n,f,window", GRIDS)
    def test_numpy_backend_matches_python_fallback(self, n, f, window):
        seeds = [3, 11, 20, 21, 22, 23, 100, 101]
        assert run_dac_batch(
            n, f, seeds, window=window, backend="numpy"
        ) == run_dac_batch(n, f, seeds, window=window, backend="python")

    def test_lane_order_is_seed_order_not_finish_order(self):
        # Lanes terminate at different rounds; results must still come
        # back in seeds order.
        seeds = [7, 0, 13, 5]
        lanes = run_dac_batch(9, 4, seeds, window=2)
        assert [lane.seed for lane in lanes] == seeds
        assert len({lane.rounds for lane in lanes}) >= 1  # all finalized
        assert all(lane.stopped for lane in lanes)

    def test_backend_resolution_and_validation(self):
        engine = BatchEngine(9, 4, [0], backend="auto")
        expected = "numpy" if numpy_available() else "python"
        assert engine.backend == expected
        assert engine.batch_size == 1
        # Value-dependent selectors are not vectorizable; auto falls
        # back to the python backend, an explicit numpy request errors.
        assert BatchEngine(9, 4, [0], selector="nearest").backend == "python"
        with pytest.raises(ValueError, match="selector|numpy"):
            BatchEngine(9, 4, [0], selector="nearest", backend="numpy")
        with pytest.raises(ValueError, match="backend"):
            BatchEngine(9, 4, [0], backend="cuda")
        with pytest.raises(ValueError, match="seed"):
            BatchEngine(9, 4, [])
        with pytest.raises(ValueError, match="2f"):
            BatchEngine(8, 4, [0])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_max_rounds_cap_reports_unstopped_lanes(self, backend):
        # A cap far below termination: every lane must report exactly
        # the cap and stopped=False, like Engine.run does.
        lanes = run_dac_batch(9, 4, [0, 1], max_rounds=3, backend=backend)
        assert [lane.rounds for lane in lanes] == [3, 3]
        assert not any(lane.stopped for lane in lanes)
        assert all(lane.outputs == {} for lane in lanes)


class TestBatchedTrialFunction:
    def test_batched_summaries_equal_serial_summaries(self):
        seeds = list(range(6))
        batched = run_dac_trial_batch(n=9, window=2, seeds=seeds)
        assert batched == [run_dac_trial(n=9, window=2, seed=s) for s in seeds]

    def test_non_fast_batch_delegates_to_serial_trials(self):
        seeds = [0, 1]
        assert run_dac_trial_batch(n=5, fast=False, seeds=seeds) == [
            run_dac_trial(n=5, fast=False, seed=s) for s in seeds
        ]

    def test_trial_carries_its_batched_form(self):
        assert run_dac_trial.batch_fn is run_dac_trial_batch


def echo_trial(seed, **params):
    return {"seed": seed, **params}


def echo_trial_batch(seeds=(), **params):
    return [{"seed": seed, **params} for seed in seeds]


def short_batch(seeds=(), **params):
    return [{"seed": seeds[0], **params}]  # drops all but the first seed


class TestRunTrialsBatching:
    def make_specs(self, count, param=1):
        return [TrialSpec((("p", param),), seed=i) for i in range(count)]

    def test_batched_results_keep_spec_order(self):
        specs = self.make_specs(10)
        results = run_trials(
            echo_trial, specs, workers=1, batch=4, batch_fn=echo_trial_batch
        )
        assert results == [echo_trial(seed=i, p=1) for i in range(10)]

    def test_batching_groups_only_consecutive_equal_params(self):
        specs = [
            TrialSpec((("p", 1),), seed=0),
            TrialSpec((("p", 1),), seed=1),
            TrialSpec((("p", 2),), seed=2),
            TrialSpec((("p", 1),), seed=3),
        ]
        results = run_trials(
            echo_trial, specs, workers=1, batch=8, batch_fn=echo_trial_batch
        )
        assert [(r["p"], r["seed"]) for r in results] == [(1, 0), (1, 1), (2, 2), (1, 3)]

    def test_batch_composes_with_workers(self):
        specs = self.make_specs(12)
        assert run_trials(
            echo_trial, specs, workers=3, batch=2, batch_fn=echo_trial_batch
        ) == [echo_trial(seed=i, p=1) for i in range(12)]

    def test_explicit_batch_without_batch_fn_raises(self):
        with pytest.raises(ValueError, match="batched trial function"):
            run_trials(echo_trial, self.make_specs(4), workers=1, batch=4)

    def test_default_batch_degrades_for_unbatched_functions(self):
        set_default_batch(4)
        try:
            assert resolve_batch(None) == 4
            # echo_trial has no batch_fn: the process-wide default must
            # not break it, just run unbatched.
            results = run_trials(echo_trial, self.make_specs(5), workers=1, batch=None)
            assert [r["seed"] for r in results] == list(range(5))
        finally:
            set_default_batch(1)
        assert resolve_batch(None) == 1

    def test_batch_size_validation(self):
        with pytest.raises(ValueError, match="batch"):
            resolve_batch(0)
        with pytest.raises(ValueError, match="batch"):
            set_default_batch(0)

    def test_wrong_length_batch_results_are_rejected(self):
        with pytest.raises(ValueError, match="one result per seed"):
            run_trials(echo_trial, self.make_specs(4), workers=1, batch=4,
                       batch_fn=short_batch)


class TestSweepBatchIdentity:
    def test_workers_4_batch_4_records_identical_to_serial(self):
        grid = {"n": [5, 7], "window": [1, 2]}
        serial = Sweep(grid=grid, repeats=4)
        composed = Sweep(grid=grid, repeats=4)
        serial.run(run_dac_trial, workers=1, batch=1)
        composed.run(run_dac_trial, workers=4, batch=4)
        assert serial.records == composed.records
        assert all(record.result["correct"] for record in composed.records)

    def test_sweep_discovers_the_batched_form_from_the_trial(self):
        grid = {"n": [9]}
        explicit = Sweep(grid=grid, repeats=4)
        implicit = Sweep(grid=grid, repeats=4)
        explicit.run(run_dac_trial, batch=4, batch_fn=run_dac_trial_batch)
        implicit.run(run_dac_trial, batch=4)  # run_dac_trial.batch_fn
        assert explicit.records == implicit.records
