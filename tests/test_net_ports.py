"""Unit tests for repro.net.ports: the anonymity mechanism."""

import random

import pytest

from repro.net.ports import PortNumbering, identity_ports, random_ports


class TestPortNumbering:
    def test_identity_round_trips(self):
        ports = identity_ports(4)
        for receiver in range(4):
            for sender in range(4):
                port = ports.port_of(receiver, sender)
                assert port == sender
                assert ports.sender_of(receiver, port) == sender

    def test_random_is_bijective(self):
        ports = random_ports(6, random.Random(3))
        for receiver in range(6):
            seen = {ports.port_of(receiver, s) for s in range(6)}
            assert seen == set(range(6))

    def test_random_round_trips(self):
        ports = random_ports(5, random.Random(9))
        for receiver in range(5):
            for sender in range(5):
                port = ports.port_of(receiver, sender)
                assert ports.sender_of(receiver, port) == sender

    def test_ports_are_local(self):
        # Two receivers may disagree about the same sender's port --
        # that is the point of anonymity. With a random numbering on
        # enough nodes some disagreement is effectively certain.
        ports = random_ports(12, random.Random(1))
        disagreements = sum(
            1
            for r1 in range(12)
            for r2 in range(12)
            if r1 != r2 and ports.port_of(r1, 0) != ports.port_of(r2, 0)
        )
        assert disagreements > 0

    def test_self_port(self):
        ports = random_ports(5, random.Random(4))
        for node in range(5):
            assert ports.self_port(node) == ports.port_of(node, node)

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError, match="not a permutation"):
            PortNumbering([[0, 0, 1], [0, 1, 2], [0, 1, 2]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            PortNumbering([])

    def test_equality(self):
        a = identity_ports(3)
        b = identity_ports(3)
        assert a == b
        c = random_ports(3, random.Random(99))
        if c != a:  # overwhelmingly likely
            assert c != b

    def test_repr(self):
        assert "n=3" in repr(identity_ports(3))

    def test_deterministic_from_seed(self):
        a = random_ports(8, random.Random(5))
        b = random_ports(8, random.Random(5))
        assert a == b
