"""Trace accessor tests plus negative tests: the runner must catch
adversaries that lie about their (T, D) promise."""


from repro.adversary.base import MessageAdversary, StaticAdversary
from repro.core.dac import DACProcess
from repro.net.graph import DirectedGraph
from repro.net.ports import identity_ports
from repro.sim.runner import run_consensus

from tests.helpers import spread_inputs


def run_dac(adversary, n=5, max_rounds=20, epsilon=1e-2):
    ports = identity_ports(n)
    inputs = spread_inputs(n)
    procs = {
        v: DACProcess(n, 0, inputs[v], v, epsilon=epsilon) for v in range(n)
    }
    return run_consensus(
        procs, adversary, ports, epsilon=epsilon, max_rounds=max_rounds
    )


class TestTraceAccessors:
    def test_phase_and_value_of(self):
        report = run_dac(StaticAdversary())
        trace = report.trace
        assert trace.phase_of(0, 0) == 1  # first round completes phase 1
        assert isinstance(trace.value_of(0, 0), float)

    def test_missing_node_returns_none(self):
        report = run_dac(StaticAdversary())
        assert report.trace.phase_of(99, 0) is None
        assert report.trace.value_of(99, 0) is None

    def test_totals_match_metrics(self):
        report = run_dac(StaticAdversary())
        assert report.trace.total_bits() == report.metrics.bits
        assert report.trace.total_delivered() == report.metrics.delivered

    def test_dynamic_graph_matches_rounds(self):
        report = run_dac(StaticAdversary())
        dyn = report.trace.dynamic_graph()
        assert len(dyn) == len(report.trace)
        assert dyn.at(0) == report.trace.at(0)


class LyingAdversary(MessageAdversary):
    """Claims (1, n-1) but delivers nothing at all."""

    def choose(self, t, view):
        return DirectedGraph.empty(self.n)

    def promised_dynadegree(self):
        return (1, self.n - 1)


class OverClaimingAdversary(MessageAdversary):
    """Claims (1, n-1) but provides only a ring (degree 1)."""

    def choose(self, t, view):
        edges = [(v, (v + 1) % self.n) for v in range(self.n)]
        return DirectedGraph(self.n, edges)

    def promised_dynadegree(self):
        return (1, self.n - 1)


class TestPromiseAuditing:
    def test_silent_liar_is_caught(self):
        report = run_dac(LyingAdversary(), max_rounds=6)
        assert report.dynadegree_promise == (1, 4)
        assert report.dynadegree_verified is False

    def test_overclaimer_is_caught(self):
        report = run_dac(OverClaimingAdversary(), max_rounds=6)
        assert report.dynadegree_verified is False

    def test_honest_promise_passes(self):
        report = run_dac(StaticAdversary(), max_rounds=20)
        assert report.dynadegree_verified is True

    def test_no_rounds_no_verdict(self):
        report = run_dac(StaticAdversary(), max_rounds=0)
        # Zero-round run: nothing to verify against.
        assert report.dynadegree_verified is None
