"""The HTTP endpoint end to end: daemon up, submit, cache, stream.

Each test runs a real :class:`BackgroundServer` (its own thread and
event loop, ephemeral port) and talks to it through the stdlib
:class:`ServiceClient` -- the same stack ``repro.cli serve`` /
``submit`` use. The acceptance scenario lives here: submitting a
semantically identical but differently-spelled spec returns the cached
result without running any new trial.
"""

from __future__ import annotations

import json

import pytest

from repro.scenario import resolve
from repro.service import BackgroundServer, ServiceClient, ServiceError

SPEC = "algorithm: dac@1(n=6); rounds: 40"
RESPELLED = "algorithm: dac@1(epsilon=1e-3, n=6); seed: 9; rounds: 40"


@pytest.fixture()
def service():
    with BackgroundServer(workers=2) as server:
        yield ServiceClient(server.host, server.port)


def test_health_and_stats(service):
    assert service.health() == {"ok": True}
    stats = service.stats()
    assert stats["jobs"]["accepted"] == 0
    assert stats["dispatch"] == {"workers": 2, "batch": 1, "pool": "persist"}


def test_resubmission_of_respelled_spec_is_served_from_cache(service):
    first = service.submit(SPEC, seeds=[0, 1])
    assert [row["status"] for row in first["results"]] == ["computed"] * 2
    second = service.submit(RESPELLED, seeds=[0, 1])
    assert second["scenario"] == first["scenario"]
    assert [row["status"] for row in second["results"]] == ["hit"] * 2
    assert json.dumps(
        [row["result"] for row in second["results"]], sort_keys=True
    ) == json.dumps([row["result"] for row in first["results"]], sort_keys=True)
    # No new trial ran for the second submission.
    stats = service.stats()
    assert stats["trials"]["computed"] == 2
    assert stats["cache"]["hits"] == 2


def test_service_results_match_direct_execution(service):
    payload = service.submit(SPEC, seeds=[3])
    direct = resolve(SPEC).run(3)
    assert payload["results"][0]["result"] == direct


def test_spec_json_object_and_envelope_forms(service):
    spec_dict = resolve(SPEC).canonical_spec().to_dict()
    bare = service.submit(spec_dict, seeds=[0])
    enveloped = service.submit(SPEC, seeds=[0])
    assert bare["scenario"] == enveloped["scenario"]
    # The bare run computed; the enveloped resubmission hit its cache.
    assert enveloped["results"][0]["status"] == "hit"


def test_cached_endpoint_round_trip(service):
    payload = service.submit(SPEC, seeds=[7])
    scenario = payload["scenario"]
    cached = service.cached(scenario, 7)
    assert cached["result"] == payload["results"][0]["result"]
    assert service.cached(scenario, 999) is None


def test_streamed_submission_orders_lifecycle_and_events(service):
    entries = []
    payload = service.submit(SPEC, seeds=[0, 1], on_event=entries.append)
    assert payload["kind"] == "result"
    assert [row["status"] for row in payload["results"]] == ["computed"] * 2
    kinds = [entry["kind"] for entry in entries]
    assert kinds[0] == "job" and entries[0]["status"] == "accepted"
    assert "trial" in kinds
    trial_seeds = [e["seed"] for e in entries if e["kind"] == "trial"]
    assert trial_seeds == [0, 1]
    # Streaming injects observe for event forwarding, but the payload
    # must stay identical to a bare (unobserved) direct run.
    assert payload["results"][0]["result"] == resolve(SPEC).run(0)
    assert [e["event"] for e in entries if e["kind"] == "event"] == [
        "RunFinished"
    ] * 2


def test_bad_spec_maps_to_http_400(service):
    with pytest.raises(ServiceError) as excinfo:
        service.submit("algorithm: no-such-family@1(n=6)")
    assert excinfo.value.status == 400
    assert "no-such-family" in str(excinfo.value)


def test_unknown_route_maps_to_http_404(service):
    with pytest.raises(ServiceError) as excinfo:
        service._request("GET", "/nope")
    assert excinfo.value.status == 404


def test_malformed_envelope_fields_are_rejected(service):
    with pytest.raises(ServiceError) as excinfo:
        service._request(
            "POST", "/jobs", json.dumps({"spec": SPEC, "sneeds": [1]})
        )
    assert excinfo.value.status == 400
    assert "sneeds" in str(excinfo.value)
    with pytest.raises(ServiceError) as excinfo:
        service._request(
            "POST", "/jobs", json.dumps({"spec": SPEC, "seeds": ["one"]})
        )
    assert excinfo.value.status == 400


def test_cache_survives_daemon_restart(tmp_path):
    path = str(tmp_path / "cache.jsonl")
    with BackgroundServer(cache_path=path) as server:
        client = ServiceClient(server.host, server.port)
        before = client.submit(SPEC, seeds=[0, 1])
        assert [row["status"] for row in before["results"]] == ["computed"] * 2
    with BackgroundServer(cache_path=path) as server:
        client = ServiceClient(server.host, server.port)
        after = client.submit(RESPELLED, seeds=[0, 1])
        assert [row["status"] for row in after["results"]] == ["hit"] * 2
        assert [row["result"] for row in after["results"]] == [
            row["result"] for row in before["results"]
        ]
        stats = client.stats()
        assert stats["trials"]["computed"] == 0
