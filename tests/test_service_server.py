"""The HTTP endpoint end to end: daemon up, submit, cache, stream.

Each test runs a real :class:`BackgroundServer` (its own thread and
event loop, ephemeral port) and talks to it through the stdlib
:class:`ServiceClient` -- the same stack ``repro.cli serve`` /
``submit`` use. The acceptance scenario lives here: submitting a
semantically identical but differently-spelled spec returns the cached
result without running any new trial.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time

import pytest

from repro.scenario import resolve
from repro.service import BackgroundServer, ServiceClient, ServiceError
from repro.service.server import ServiceServer

SPEC = "algorithm: dac@1(n=6); rounds: 40"
RESPELLED = "algorithm: dac@1(epsilon=1e-3, n=6); seed: 9; rounds: 40"


@pytest.fixture()
def service():
    with BackgroundServer(workers=2) as server:
        yield ServiceClient(server.host, server.port)


def test_health_and_stats(service):
    assert service.health() == {"ok": True}
    stats = service.stats()
    assert stats["jobs"]["accepted"] == 0
    assert stats["dispatch"] == {"workers": 2, "batch": 1, "pool": "persist"}


def test_resubmission_of_respelled_spec_is_served_from_cache(service):
    first = service.submit(SPEC, seeds=[0, 1])
    assert [row["status"] for row in first["results"]] == ["computed"] * 2
    second = service.submit(RESPELLED, seeds=[0, 1])
    assert second["scenario"] == first["scenario"]
    assert [row["status"] for row in second["results"]] == ["hit"] * 2
    assert json.dumps(
        [row["result"] for row in second["results"]], sort_keys=True
    ) == json.dumps([row["result"] for row in first["results"]], sort_keys=True)
    # No new trial ran for the second submission.
    stats = service.stats()
    assert stats["trials"]["computed"] == 2
    assert stats["cache"]["hits"] == 2


def test_service_results_match_direct_execution(service):
    payload = service.submit(SPEC, seeds=[3])
    direct = resolve(SPEC).run(3)
    assert payload["results"][0]["result"] == direct


def test_spec_json_object_and_envelope_forms(service):
    spec_dict = resolve(SPEC).canonical_spec().to_dict()
    bare = service.submit(spec_dict, seeds=[0])
    enveloped = service.submit(SPEC, seeds=[0])
    assert bare["scenario"] == enveloped["scenario"]
    # The bare run computed; the enveloped resubmission hit its cache.
    assert enveloped["results"][0]["status"] == "hit"


def test_cached_endpoint_round_trip(service):
    payload = service.submit(SPEC, seeds=[7])
    scenario = payload["scenario"]
    cached = service.cached(scenario, 7)
    assert cached["result"] == payload["results"][0]["result"]
    assert service.cached(scenario, 999) is None


def test_streamed_submission_orders_lifecycle_and_events(service):
    entries = []
    payload = service.submit(SPEC, seeds=[0, 1], on_event=entries.append)
    assert payload["kind"] == "result"
    assert [row["status"] for row in payload["results"]] == ["computed"] * 2
    kinds = [entry["kind"] for entry in entries]
    assert kinds[0] == "job" and entries[0]["status"] == "accepted"
    assert "trial" in kinds
    trial_seeds = [e["seed"] for e in entries if e["kind"] == "trial"]
    assert trial_seeds == [0, 1]
    # Streaming injects observe for event forwarding, but the payload
    # must stay identical to a bare (unobserved) direct run.
    assert payload["results"][0]["result"] == resolve(SPEC).run(0)
    assert [e["event"] for e in entries if e["kind"] == "event"] == [
        "RunFinished"
    ] * 2


def test_bad_spec_maps_to_http_400(service):
    with pytest.raises(ServiceError) as excinfo:
        service.submit("algorithm: no-such-family@1(n=6)")
    assert excinfo.value.status == 400
    assert "no-such-family" in str(excinfo.value)


def test_unknown_route_maps_to_http_404(service):
    with pytest.raises(ServiceError) as excinfo:
        service._request("GET", "/nope")
    assert excinfo.value.status == 404


def test_malformed_envelope_fields_are_rejected(service):
    with pytest.raises(ServiceError) as excinfo:
        service._request(
            "POST", "/jobs", json.dumps({"spec": SPEC, "sneeds": [1]})
        )
    assert excinfo.value.status == 400
    assert "sneeds" in str(excinfo.value)
    with pytest.raises(ServiceError) as excinfo:
        service._request(
            "POST", "/jobs", json.dumps({"spec": SPEC, "seeds": ["one"]})
        )
    assert excinfo.value.status == 400


def _recv_until_close(sock: socket.socket) -> bytes:
    chunks = []
    while True:
        data = sock.recv(65536)
        if not data:
            return b"".join(chunks)
        chunks.append(data)


def test_concurrent_connections_keep_headers_isolated(service):
    # Connection A stalls mid-head while connection B completes a
    # request that carries a Content-Length. A's body read must use
    # A's (empty) headers, not B's -- per-request state is
    # connection-local, never stored on the shared server instance.
    slow = socket.create_connection((service.host, service.port), timeout=10)
    fast = socket.create_connection((service.host, service.port), timeout=10)
    try:
        slow.sendall(b"GET /healthz HTTP/1.1\r\n")  # head unfinished
        time.sleep(0.2)  # let the server park inside A's header loop
        fast.sendall(b"POST /nope HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
        response_fast = _recv_until_close(fast)
        assert response_fast.startswith(b"HTTP/1.1 404")
        slow.sendall(b"\r\n")  # A's head ends with no Content-Length
        response_slow = _recv_until_close(slow)
        assert response_slow.startswith(b"HTTP/1.1 200")
        assert b'"ok": true' in response_slow
    finally:
        slow.close()
        fast.close()


def test_streamed_failure_keeps_a_single_status_line(service, monkeypatch):
    import repro.service.jobs as jobs_module

    def exploding_run_trials(*args, **kwargs):
        raise RuntimeError("worker blew up")

    monkeypatch.setattr(jobs_module, "run_trials", exploding_run_trials)
    body = json.dumps({"spec": SPEC, "stream": True}).encode("utf-8")
    head = (
        "POST /jobs?stream=1 HTTP/1.1\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Content-Type: application/json\r\n"
        "\r\n"
    ).encode("latin-1")
    with socket.create_connection((service.host, service.port), timeout=30) as sock:
        sock.sendall(head + body)
        raw = _recv_until_close(sock)
    # One 200 head, then the failure travels in-stream -- never a
    # second HTTP status line appended to the chunked body.
    assert raw.count(b"HTTP/1.1") == 1
    assert raw.startswith(b"HTTP/1.1 200")
    assert b'"kind": "error"' in raw
    assert b"worker blew up" in raw
    assert raw.endswith(b"0\r\n\r\n")


def test_stream_errors_after_head_stay_in_stream():
    # Even a failure while tailing the log (after the chunked head is
    # on the wire) is reported as an in-stream error chunk plus the
    # terminal chunk, not as a fresh status line.
    class _Writer:
        def __init__(self) -> None:
            self.data = bytearray()

        def write(self, data: bytes) -> None:
            self.data += data

        async def drain(self) -> None:
            pass

        def is_closing(self) -> bool:
            return False

    class _ExplodingLog:
        async def tail(self):
            yield {"kind": "job", "status": "accepted"}
            raise RuntimeError("log exploded")

    class _Job:
        id = "job-1"
        log = _ExplodingLog()

        async def result(self):
            return {}

    async def scenario():
        writer = _Writer()
        marks: list[bool] = []
        server = ServiceServer(manager=None)  # _stream touches no manager
        await server._stream(writer, _Job(), lambda: marks.append(True))
        return bytes(writer.data), marks

    raw, marks = asyncio.run(scenario())
    assert marks == [True]
    assert raw.count(b"HTTP/1.1") == 1
    assert b'"kind": "error"' in raw
    assert b"log exploded" in raw
    assert raw.endswith(b"0\r\n\r\n")


def test_cache_survives_daemon_restart(tmp_path):
    path = str(tmp_path / "cache.jsonl")
    with BackgroundServer(cache_path=path) as server:
        client = ServiceClient(server.host, server.port)
        before = client.submit(SPEC, seeds=[0, 1])
        assert [row["status"] for row in before["results"]] == ["computed"] * 2
    with BackgroundServer(cache_path=path) as server:
        client = ServiceClient(server.host, server.port)
        after = client.submit(RESPELLED, seeds=[0, 1])
        assert [row["status"] for row in after["results"]] == ["hit"] * 2
        assert [row["result"] for row in after["results"]] == [
            row["result"] for row in before["results"]
        ]
        stats = client.stats()
        assert stats["trials"]["computed"] == 0
