"""Unit tests for the prior-stability-property adversaries."""

import pytest

from repro.adversary.comparative import RootedStarAdversary, StableSpanningTreeAdversary
from repro.faults.base import FaultPlan
from repro.net.dynadegree import max_degree_for_window
from repro.net.dynamic import DynamicGraph
from repro.net.properties import is_rooted_every_round, is_t_interval_connected
from repro.sim.rng import child_rng


def trace_of(adversary, n, rounds):
    adversary.setup(n, FaultPlan.fault_free_plan(n), child_rng(0, "adv"))
    dyn = DynamicGraph(n)
    for t in range(rounds):
        dyn.record(adversary.choose(t, None))
    return dyn


class TestRootedStar:
    def test_mode_validated(self):
        with pytest.raises(ValueError, match="mode"):
            RootedStarAdversary("spiral")

    def test_rooted_every_round_all_modes(self):
        for mode in ("fixed", "rotate", "random"):
            trace = trace_of(RootedStarAdversary(mode), 5, 8)
            assert is_rooted_every_round(trace), mode

    def test_fixed_root_pins_dynadegree_at_one(self):
        trace = trace_of(RootedStarAdversary("fixed"), 6, 12)
        # The root itself hears nobody, so global max D is 0; excluding
        # the root, everyone has exactly one (always the same) sender.
        assert max_degree_for_window(trace, 6) == 0
        assert max_degree_for_window(trace, 6, fault_free=range(1, 6)) == 1

    def test_rotation_accumulates_distinct_senders(self):
        # Rotation means a window of T rounds supplies ~T distinct
        # in-neighbors: dynaDegree grows with the window.
        trace = trace_of(RootedStarAdversary("rotate"), 6, 12)
        d2 = max_degree_for_window(trace, 2)
        d5 = max_degree_for_window(trace, 5)
        assert d5 > d2
        assert d5 >= 4  # 5 rounds, at most one of them rooted at self

    def test_star_shape(self):
        trace = trace_of(RootedStarAdversary("fixed"), 5, 1)
        g = trace.at(0)
        assert g.out_degree(0) == 4
        assert g.in_degree(0) == 0
        for v in range(1, 5):
            assert g.in_neighbors(v) == {0}

    def test_promise_is_minimal(self):
        assert RootedStarAdversary().promised_dynadegree() == (1, 1)


class TestStableSpanningTree:
    def test_t_interval_connected_for_all_windows(self):
        trace = trace_of(StableSpanningTreeAdversary(), 6, 10)
        for window in (1, 3, 10):
            assert is_t_interval_connected(trace, window)

    def test_dynadegree_stuck_at_one_forever(self):
        trace = trace_of(StableSpanningTreeAdversary(), 6, 12)
        # Endpoints have in-degree 1 no matter the window.
        assert max_degree_for_window(trace, 12) == 1

    def test_path_shape(self):
        trace = trace_of(StableSpanningTreeAdversary(), 4, 1)
        g = trace.at(0)
        assert g.in_neighbors(0) == {1}
        assert g.in_neighbors(1) == {0, 2}
        assert g.in_neighbors(3) == {2}

    def test_static(self):
        adv = StableSpanningTreeAdversary()
        trace = trace_of(adv, 5, 3)
        assert trace.at(0) == trace.at(2)
