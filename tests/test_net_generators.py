"""Unit tests for repro.net.generators."""

import random

import pytest

from repro.net.generators import (
    complete_edges,
    cycle_edges,
    drop_incoming,
    empty_edges,
    in_links_from,
    random_edges,
    split_edges,
    star_edges,
)
from repro.net.graph import DirectedGraph


class TestBasicTopologies:
    def test_empty(self):
        assert empty_edges(5) == []
        with pytest.raises(ValueError):
            empty_edges(0)

    def test_complete(self):
        edges = complete_edges(4)
        assert len(edges) == 12
        assert (0, 0) not in edges

    def test_cycle_bidirectional(self):
        edges = cycle_edges(4)
        assert (0, 1) in edges and (1, 0) in edges
        assert len(edges) == 8

    def test_cycle_directed(self):
        edges = cycle_edges(4, bidirectional=False)
        assert (0, 1) in edges and (1, 0) not in edges
        assert (3, 0) in edges
        assert len(edges) == 4

    def test_cycle_too_small(self):
        with pytest.raises(ValueError, match="n >= 2"):
            cycle_edges(1)

    def test_star(self):
        edges = star_edges(5, center=2)
        g = DirectedGraph(5, edges)
        assert g.out_degree(2) == 4
        assert g.in_degree(2) == 4
        assert g.in_degree(0) == 1

    def test_star_one_way(self):
        edges = star_edges(4, center=0, bidirectional=False)
        g = DirectedGraph(4, edges)
        assert g.in_degree(0) == 0
        assert g.out_degree(0) == 3

    def test_star_center_range(self):
        with pytest.raises(ValueError, match="out of range"):
            star_edges(4, center=4)


class TestRandomEdges:
    def test_p_zero_and_one(self):
        rng = random.Random(0)
        assert random_edges(5, 0.0, rng) == []
        assert len(random_edges(5, 1.0, rng)) == 20

    def test_probability_validated(self):
        with pytest.raises(ValueError, match="probability"):
            random_edges(5, 1.5, random.Random(0))

    def test_deterministic_given_rng(self):
        a = random_edges(6, 0.4, random.Random(42))
        b = random_edges(6, 0.4, random.Random(42))
        assert a == b

    def test_density_roughly_p(self):
        rng = random.Random(7)
        total = sum(len(random_edges(20, 0.3, rng)) for _ in range(50))
        expected = 50 * 20 * 19 * 0.3
        assert 0.9 * expected < total < 1.1 * expected


class TestSplitEdges:
    def test_disjoint_groups_stay_silent(self):
        edges = split_edges(6, [{0, 1, 2}, {3, 4, 5}])
        g = DirectedGraph(6, edges)
        assert (0, 1) in g and (3, 4) in g
        assert (0, 3) not in g and (3, 0) not in g

    def test_overlapping_groups_union(self):
        edges = split_edges(5, [{0, 1, 2}, {2, 3, 4}])
        g = DirectedGraph(5, edges)
        # Overlap node 2 hears both sides.
        assert g.in_neighbors(2) == {0, 1, 3, 4}
        # Exclusive members hear only their group.
        assert g.in_neighbors(0) == {1, 2}
        assert g.in_neighbors(4) == {2, 3}

    def test_out_of_range_member_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            split_edges(3, [{0, 5}])

    def test_singleton_group_has_no_edges(self):
        assert split_edges(3, [{1}]) == []


class TestLinkHelpers:
    def test_in_links_from(self):
        assert in_links_from({0, 2}, 1) == [(0, 1), (2, 1)]
        # Self excluded automatically.
        assert in_links_from({1, 2}, 1) == [(2, 1)]

    def test_drop_incoming(self):
        edges = [(0, 1), (2, 1), (0, 2)]
        remaining = drop_incoming(edges, target=1, sources={0})
        assert (0, 1) not in remaining
        assert (2, 1) in remaining and (0, 2) in remaining
