"""The async job manager: coalescing, event forwarding, failure paths.

Driven with ``asyncio.run`` (no event-loop plugin): each test builds a
manager, submits, awaits, and closes inside one coroutine. The
hallmark assertions are the in-flight coalescing contract (concurrent
identical submissions share one computation) and the byte-identity of
service payloads with direct ``resolve(spec).run(seed)`` executions.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.scenario import resolve
from repro.service.cache import ResultCache
from repro.service.jobs import JobEventLog, JobManager

SPEC = "algorithm: dac@1(n=6); rounds: 40"
RESPELLED = "algorithm: dac@1(epsilon=1e-3, n=6); seed: 9; rounds: 40"


def run(coroutine):
    return asyncio.run(coroutine)


async def _submit_and_close(manager, *submissions):
    """Submit each (spec, kwargs) pair, await all payloads, close."""
    try:
        payloads = []
        for spec, kwargs in submissions:
            job = await manager.submit(spec, **kwargs)
            payloads.append(await job.result())
        return payloads
    finally:
        await manager.close(shutdown_pool=False)


def test_compute_then_hit_with_different_spelling():
    async def scenario():
        manager = JobManager()
        first, second = await _submit_and_close(
            manager,
            (SPEC, {"seeds": [0, 1]}),
            (RESPELLED, {"seeds": [0, 1]}),
        )
        assert [row["status"] for row in first["results"]] == ["computed"] * 2
        assert [row["status"] for row in second["results"]] == ["hit"] * 2
        assert first["scenario"] == second["scenario"]
        assert first["spec"] == second["spec"]  # both canonicalized
        # Byte-identity of the cached replay with the computed results.
        computed = [(row["seed"], row["result"]) for row in first["results"]]
        replayed = [(row["seed"], row["result"]) for row in second["results"]]
        assert json.dumps(computed, sort_keys=True) == json.dumps(
            replayed, sort_keys=True
        )
        return first

    payload = run(scenario())
    # Differential check: service results == direct executions, value
    # for value (both are plain JSON scalars, so dumps equality is
    # byte-identity).
    resolved = resolve(SPEC)
    direct = {row["seed"]: resolved.run(row["seed"]) for row in payload["results"]}
    service = {row["seed"]: row["result"] for row in payload["results"]}
    assert json.dumps(service, sort_keys=True) == json.dumps(direct, sort_keys=True)


def test_concurrent_identical_submissions_coalesce():
    async def scenario():
        manager = JobManager()
        try:
            # Submit twice *before* yielding to the drain task: the
            # single-threaded event loop guarantees the second submit
            # sees the first's in-flight future, making the race
            # deterministic.
            job_a = await manager.submit(SPEC, seeds=[5])
            job_b = await manager.submit(SPEC, seeds=[5])
            assert job_a.statuses[5][0] == "computed"
            assert job_b.statuses[5][0] == "coalesced"
            payload_a = await job_a.result()
            payload_b = await job_b.result()
            assert manager.trials_computed == 1
            assert manager.trials_coalesced == 1
            assert (
                payload_a["results"][0]["result"]
                == payload_b["results"][0]["result"]
            )
            assert payload_b["coalesced"] == 1
        finally:
            await manager.close(shutdown_pool=False)

    run(scenario())


def test_mixed_request_splits_per_seed():
    async def scenario():
        manager = JobManager()
        try:
            first = await manager.submit(SPEC, seeds=[0])
            await first.result()
            second = await manager.submit(SPEC, seeds=[0, 1])
            payload = await second.result()
            statuses = {row["seed"]: row["status"] for row in payload["results"]}
            assert statuses == {0: "hit", 1: "computed"}
            assert payload["hit"] == 1 and payload["computed"] == 1
        finally:
            await manager.close(shutdown_pool=False)

    run(scenario())


def test_event_stream_ordering_under_pool_workers():
    async def scenario():
        manager = JobManager(workers=4)
        try:
            job = await manager.submit(SPEC, seeds=[0, 1, 2, 3], events=True)
            payload = await job.result()
            return payload, job.log.entries
        finally:
            await manager.close(shutdown_pool=True)

    payload, entries = run(scenario())
    events = [e for e in entries if e["kind"] == "event"]
    trials = [e for e in entries if e["kind"] == "trial"]
    assert [e["event"] for e in events] == ["RunFinished"] * 4
    assert [e["seed"] for e in trials] == [0, 1, 2, 3]
    # Forwarded events are replayed in spec order (trial i's events
    # before trial i+1's) regardless of which pool worker ran what:
    # each RunFinished's round count must line up with its seed's
    # result, in submission order.
    result_rounds = [row["result"]["rounds"] for row in payload["results"]]
    assert [e["rounds"] for e in events] == result_rounds
    # The observe knob injected for streaming must not leak into the
    # cached payloads: results stay identical to bare runs.
    resolved = resolve(SPEC)
    for row in payload["results"]:
        assert row["result"] == resolved.run(row["seed"])


def test_failed_trials_are_not_cached(monkeypatch):
    calls = {"count": 0}

    def exploding_run_trials(*args, **kwargs):
        calls["count"] += 1
        raise RuntimeError("worker blew up")

    async def scenario():
        manager = JobManager()
        try:
            import repro.service.jobs as jobs_module

            monkeypatch.setattr(jobs_module, "run_trials", exploding_run_trials)
            job = await manager.submit(SPEC, seeds=[0])
            with pytest.raises(RuntimeError, match="worker blew up"):
                await job.result()
            assert manager.jobs_failed == 1
            assert len(manager.cache) == 0
            assert manager._inflight == {}
            monkeypatch.undo()
            retry = await manager.submit(SPEC, seeds=[0])
            payload = await retry.result()
            assert payload["results"][0]["status"] == "computed"
        finally:
            await manager.close(shutdown_pool=False)

    run(scenario())
    assert calls["count"] == 1


def test_unserializable_outcome_fails_the_job_not_the_drain_task(
    tmp_path, monkeypatch
):
    # With a persistence tier, cache.put json-dumps the outcome. An
    # outcome that cannot serialize must fail the job's futures (and
    # any coalesced waiters) rather than kill _drain and hang clients.
    def poisoned_run_trials(*args, **kwargs):
        return [{"rounds": object()}]

    async def scenario():
        manager = JobManager(cache=ResultCache(tmp_path / "cache.jsonl"))
        try:
            import repro.service.jobs as jobs_module

            monkeypatch.setattr(jobs_module, "run_trials", poisoned_run_trials)
            job = await manager.submit(SPEC, seeds=[0])
            coalesced = await manager.submit(SPEC, seeds=[0])
            assert coalesced.statuses[0][0] == "coalesced"
            with pytest.raises(TypeError):
                await asyncio.wait_for(job.result(), timeout=10)
            with pytest.raises(TypeError):
                await asyncio.wait_for(coalesced.result(), timeout=10)
            assert manager.jobs_failed == 1
            assert manager._inflight == {}
            assert job.log.closed
            assert len(manager.cache) == 0  # the failed put cached nothing
            # The drain task survived: a good submission still runs.
            monkeypatch.undo()
            retry = await manager.submit(SPEC, seeds=[0])
            payload = await asyncio.wait_for(retry.result(), timeout=60)
            assert payload["results"][0]["status"] == "computed"
        finally:
            await manager.close(shutdown_pool=False)

    run(scenario())


def test_cancelled_backpressure_put_releases_inflight_claims():
    async def scenario():
        manager = JobManager(queue_size=1)
        manager.start = lambda: None  # keep the queue from draining
        await manager.submit(SPEC, seeds=[0])  # fills the bounded queue
        # This submission claims seed 1 then blocks awaiting queue
        # space; cancelling it (client teardown under backpressure)
        # must release the claim, or every later identical submission
        # coalesces onto a future nobody will ever resolve.
        blocked = asyncio.get_running_loop().create_task(
            manager.submit(SPEC, seeds=[1])
        )
        await asyncio.sleep(0)
        claimed = [key for key in manager._inflight if key[1] == 1]
        assert len(claimed) == 1
        coalesced = await manager.submit(SPEC, seeds=[1])
        assert coalesced.statuses[1][0] == "coalesced"
        blocked.cancel()
        with pytest.raises(asyncio.CancelledError):
            await blocked
        assert claimed[0] not in manager._inflight
        with pytest.raises(RuntimeError, match="abandoned"):
            await asyncio.wait_for(coalesced.result(), timeout=10)
        # A fresh submission claims the seed anew instead of attaching
        # to the abandoned computation.
        del manager.start  # restore draining for real execution
        retry = await manager.submit(SPEC, seeds=[1])
        assert retry.statuses[1][0] == "computed"
        payload = await asyncio.wait_for(retry.result(), timeout=60)
        assert payload["results"][0]["status"] == "computed"
        await manager.close(shutdown_pool=False)

    run(scenario())


def test_close_fails_pending_futures():
    async def scenario():
        manager = JobManager(queue_size=1)
        job = await manager.submit(SPEC, seeds=[0])
        # Close before draining: the in-flight future must fail loudly
        # rather than hang the awaiting client forever.
        await manager.close(shutdown_pool=False)
        with pytest.raises(RuntimeError, match="shut down"):
            await job.result()

    run(scenario())


def test_event_log_tail_sees_everything_in_order():
    async def scenario():
        log = JobEventLog()
        seen: list[int] = []

        async def tailer():
            async for entry in log.tail():
                seen.append(entry["i"])

        task = asyncio.get_running_loop().create_task(tailer())
        log.append({"i": 0})
        log.append({"i": 1})
        await asyncio.sleep(0)
        log.append({"i": 2})
        log.close()
        await task
        assert seen == [0, 1, 2]
        assert log.entries == [{"i": 0}, {"i": 1}, {"i": 2}]
        log.append({"i": 3})  # dropped: the log is complete
        assert len(log.entries) == 3

    run(scenario())


def test_persistent_cache_feeds_a_new_manager(tmp_path):
    path = tmp_path / "cache.jsonl"

    async def first_life():
        manager = JobManager(cache=ResultCache(path))
        (payload,) = await _submit_and_close(manager, (SPEC, {"seeds": [0, 1]}))
        return payload

    async def second_life():
        manager = JobManager(cache=ResultCache(path))
        (payload,) = await _submit_and_close(
            manager, (RESPELLED, {"seeds": [0, 1]})
        )
        return payload

    before = run(first_life())
    after = run(second_life())
    assert [row["status"] for row in after["results"]] == ["hit", "hit"]
    assert [row["result"] for row in after["results"]] == [
        row["result"] for row in before["results"]
    ]
