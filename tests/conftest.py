"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.net.ports import identity_ports, random_ports
from repro.sim.rng import child_rng


@pytest.fixture(scope="session", autouse=True)
def pool_arena_hygiene():
    """Whole-suite shared-memory hygiene gate.

    After the last test, close the persistent worker pool (unlinking
    every published arena segment) and assert nothing this process
    published is left behind -- neither in the registry nor on the
    kernel's shared-memory filesystem. A leak anywhere in the suite
    fails here with the segment names.
    """
    yield
    from repro.sim import parallel

    parallel.close_pool()
    assert parallel.arena_registry().segment_names() == []
    shm = Path("/dev/shm")
    if shm.is_dir():
        leaked = sorted(p.name for p in shm.glob(f"repro_arena_{os.getpid()}_*"))
        assert leaked == [], f"leaked shared-memory segments: {leaked}"


@pytest.fixture
def ports5():
    """Identity ports for a 5-node network."""
    return identity_ports(5)


@pytest.fixture
def ports9():
    """Identity ports for a 9-node network."""
    return identity_ports(9)


@pytest.fixture
def shuffled_ports9():
    """Random (but deterministic) ports for a 9-node network."""
    return random_ports(9, child_rng(1234, "test-ports"))

