"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.net.ports import identity_ports, random_ports
from repro.sim.rng import child_rng


@pytest.fixture
def ports5():
    """Identity ports for a 5-node network."""
    return identity_ports(5)


@pytest.fixture
def ports9():
    """Identity ports for a 9-node network."""
    return identity_ports(9)


@pytest.fixture
def shuffled_ports9():
    """Random (but deterministic) ports for a 9-node network."""
    return random_ports(9, child_rng(1234, "test-ports"))

