"""Unit tests for trace persistence (formats v1/v2/v3) and replay."""

import json
import resource
import subprocess
import sys
from pathlib import Path

import pytest

from repro.adversary.base import StaticAdversary
from repro.adversary.random_adv import RandomLinkAdversary
from repro.core.dac import DACProcess
from repro.net.ports import identity_ports
from repro.sim.persistence import (
    TraceReader,
    TraceWriter,
    load_trace,
    replay_adversary,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.sim.runner import run_consensus
from repro.sim.trace import ExecutionTrace

from tests.helpers import spread_inputs

REPO = Path(__file__).resolve().parent.parent


def run_dac(adversary, n=5, seed=3, max_rounds=20):
    ports = identity_ports(n)
    inputs = spread_inputs(n)
    procs = {
        v: DACProcess(n, 0, inputs[v], v, epsilon=1e-2) for v in range(n)
    }
    return run_consensus(
        procs, adversary, ports, epsilon=1e-2, max_rounds=max_rounds, seed=seed
    )


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        report = run_dac(RandomLinkAdversary(0.5))
        original = report.trace
        rebuilt = trace_from_dict(trace_to_dict(original))
        assert len(rebuilt) == len(original)
        for t in range(len(original)):
            assert rebuilt.at(t) == original.at(t)
            assert rebuilt.rounds[t].states == original.rounds[t].states
            assert rebuilt.rounds[t].delivered == original.rounds[t].delivered
            assert rebuilt.rounds[t].bits == original.rounds[t].bits
            assert rebuilt.rounds[t].live_senders == original.rounds[t].live_senders

    def test_file_round_trip(self, tmp_path):
        report = run_dac(StaticAdversary())
        path = tmp_path / "trace.json"
        save_trace(report.trace, path)
        rebuilt = load_trace(path)
        assert len(rebuilt) == len(report.trace)
        assert rebuilt.at(0) == report.trace.at(0)

    def test_version_checked(self):
        payload = trace_to_dict(ExecutionTrace(3))
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            trace_from_dict(payload)


def as_v1_payload(trace: ExecutionTrace) -> dict:
    """The historical version-1 shape: edges inlined in every round."""
    payload = trace_to_dict(trace)
    rounds = []
    for row in payload["rounds"]:
        row = dict(row)
        row["edges"] = payload["graphs"][row.pop("graph")]
        rounds.append(row)
    return {"version": 1, "n": payload["n"], "rounds": rounds}


def assert_same_trace(rebuilt: ExecutionTrace, original: ExecutionTrace):
    assert len(rebuilt) == len(original)
    for a, b in zip(rebuilt.rounds, original.rounds):
        assert a.graph == b.graph
        assert a.states == b.states
        assert (a.round, a.delivered, a.bits, a.live_senders) == (
            b.round,
            b.delivered,
            b.bits,
            b.live_senders,
        )


class TestFormatVersions:
    """All three on-disk formats load uniformly through load_trace."""

    def test_v1_file_loads(self, tmp_path):
        report = run_dac(RandomLinkAdversary(0.5))
        path = tmp_path / "trace_v1.json"
        path.write_text(json.dumps(as_v1_payload(report.trace), indent=1))
        assert_same_trace(load_trace(path), report.trace)

    def test_v2_file_loads(self, tmp_path):
        report = run_dac(RandomLinkAdversary(0.5))
        path = tmp_path / "trace_v2.json"
        save_trace(report.trace, path, version=2)
        assert_same_trace(load_trace(path), report.trace)

    def test_v3_file_loads(self, tmp_path):
        report = run_dac(RandomLinkAdversary(0.5))
        path = tmp_path / "trace_v3.jsonl"
        save_trace(report.trace, path, version=3)
        assert_same_trace(load_trace(path), report.trace)

    def test_unknown_write_version_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="version"):
            save_trace(ExecutionTrace(3), tmp_path / "t.json", version=7)


class TestStreamedTraces:
    """The v3 writer/reader pair: spill, lazy read, recovery."""

    def test_lazy_iteration_matches_rounds(self, tmp_path):
        report = run_dac(RandomLinkAdversary(0.5))
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path, report.n, chunk_rounds=3) as writer:
            for snapshot in report.trace.rounds:
                writer.record(snapshot)
        assert writer.rounds_written == len(report.trace)
        reader = TraceReader(path)
        assert reader.n == report.n
        assert reader.chunk_rounds == 3
        streamed = list(reader)
        assert len(streamed) == len(report.trace)
        for got, want in zip(streamed, report.trace.rounds):
            assert got.graph == want.graph
            assert got.states == want.states

    def test_graph_table_is_shared_across_chunks(self, tmp_path):
        # Enforced-adversary runs cycle a few graphs; dedup must hold
        # across chunk boundaries (cumulative indices) and loaded
        # rounds with equal graphs must share one Topology object.
        report = run_dac(StaticAdversary(), max_rounds=10)
        path = tmp_path / "trace.jsonl"
        save_trace(report.trace, path, version=3)
        chunks = [
            json.loads(line)
            for line in path.read_text().splitlines()[1:]
        ]
        total_graphs = sum(len(c["graphs"]) for c in chunks)
        assert total_graphs == len(report.trace.unique_graphs())
        rebuilt = TraceReader(path).load()
        assert rebuilt.at(0) is rebuilt.at(1)  # interned, not re-built

    def test_replay_from_streamed_trace(self, tmp_path):
        first = run_dac(RandomLinkAdversary(0.5))
        path = tmp_path / "trace.jsonl"
        save_trace(first.trace, path, version=3)
        replayed = run_dac(replay_adversary(load_trace(path)))
        assert replayed.outputs == first.outputs
        assert replayed.rounds == first.rounds

    def test_engine_sink_path_equals_in_memory_trace(self, tmp_path):
        # The same seed run twice: once with the in-RAM trace, once
        # spilling through a TraceWriter sink. The file must hold the
        # identical execution.
        reference = run_dac(RandomLinkAdversary(0.5))
        path = tmp_path / "trace.jsonl"
        ports = identity_ports(5)
        inputs = spread_inputs(5)
        procs = {
            v: DACProcess(5, 0, inputs[v], v, epsilon=1e-2) for v in range(5)
        }
        with TraceWriter(path, 5, chunk_rounds=4) as sink:
            report = run_consensus(
                procs,
                RandomLinkAdversary(0.5),
                ports,
                epsilon=1e-2,
                max_rounds=20,
                seed=3,
                trace_sink=sink,
            )
        assert report.trace is None  # spilled, not held in memory
        assert_same_trace(load_trace(path), reference.trace)

    def test_truncated_final_chunk_recovers_flushed_rounds(self, tmp_path):
        report = run_dac(RandomLinkAdversary(0.5))
        assert len(report.trace) >= 7
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path, report.n, chunk_rounds=3) as writer:
            for snapshot in report.trace.rounds:
                writer.record(snapshot)
        lines = path.read_text().splitlines()
        # Kill the run mid-write: the final chunk line is half there.
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        path.write_text("\n".join(lines))
        recovered = load_trace(path)
        full_chunks = (len(lines) - 2) * 3
        assert len(recovered) == full_chunks
        assert_same_trace(
            recovered,
            ExecutionTrace(
                report.n, rounds=list(report.trace.rounds[:full_chunks])
            ),
        )

    def test_corruption_before_the_end_raises(self, tmp_path):
        report = run_dac(RandomLinkAdversary(0.5))
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path, report.n, chunk_rounds=2) as writer:
            for snapshot in report.trace.rounds:
                writer.record(snapshot)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:10]  # garbage with chunks after it
        path.write_text("\n".join(lines))
        with pytest.raises(ValueError, match="corrupt chunk"):
            list(TraceReader(path))

    def test_reader_rejects_non_streamed_files(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(ExecutionTrace(3), path, version=2)
        with pytest.raises(ValueError, match="streamed"):
            TraceReader(path)

    def test_chunk_rounds_validated(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_rounds"):
            TraceWriter(tmp_path / "t.jsonl", 3, chunk_rounds=0)

    def test_bounded_memory_on_long_traced_run(self, tmp_path):
        """A 50k-round traced run stays O(chunk): peak RSS under a
        ceiling far below what buffering every snapshot would cost."""
        path = tmp_path / "long.jsonl"
        script = (
            "import resource, sys\n"
            "from repro.sim.engine import Engine\n"
            "from repro.sim.persistence import TraceWriter\n"
            "from repro.workloads import build_dac_execution\n"
            "kwargs = build_dac_execution(n=6, f=1, seed=1)\n"
            "with TraceWriter(sys.argv[1], 6, chunk_rounds=256) as sink:\n"
            "    engine = Engine(\n"
            "        kwargs['processes'], kwargs['adversary'], kwargs['ports'],\n"
            "        fault_plan=kwargs['fault_plan'], f=kwargs['f'],\n"
            "        seed=kwargs['seed'], trace_sink=sink,\n"
            "    )\n"
            "    engine.run(50_000)\n"
            "peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss\n"
            "print(sink.rounds_written, peak_kb)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO / "src")},
        )
        assert proc.returncode == 0, proc.stderr
        rounds_written, peak_kb = (int(v) for v in proc.stdout.split())
        assert rounds_written == 50_000
        assert peak_kb < 200_000, f"peak RSS {peak_kb} KiB: not O(chunk)"
        # And the spill really is the whole run, readable lazily.
        count = sum(1 for _ in TraceReader(path))
        assert count == 50_000


class TestReplay:
    def test_replay_reproduces_the_execution(self):
        # Record a stochastic run, then replay its links against fresh
        # processes: outputs must match exactly (the algorithms are
        # deterministic given deliveries).
        first = run_dac(RandomLinkAdversary(0.5))
        replayed = run_dac(replay_adversary(first.trace))
        assert replayed.outputs == first.outputs
        assert replayed.rounds == first.rounds
        for t in range(min(first.rounds, replayed.rounds)):
            assert replayed.trace.at(t) == first.trace.at(t)

    def test_replay_goes_silent_past_recording(self):
        first = run_dac(StaticAdversary(), max_rounds=3)
        adv = replay_adversary(first.trace)
        follow = run_dac(adv, max_rounds=6)
        assert len(follow.trace.at(4)) == 0  # beyond the recording

    def test_replay_can_loop(self):
        first = run_dac(StaticAdversary(), max_rounds=2)
        adv = replay_adversary(first.trace, repeat=True)
        follow = run_dac(adv, max_rounds=6)
        assert follow.trace.at(4) == first.trace.at(0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty trace"):
            replay_adversary(ExecutionTrace(3))

    def test_promise_passthrough(self):
        first = run_dac(StaticAdversary(), max_rounds=2)
        adv = replay_adversary(first.trace, promise=(1, 4))
        assert adv.promised_dynadegree() == (1, 4)
