"""Unit tests for trace persistence and replay."""

import pytest

from repro.adversary.base import StaticAdversary
from repro.adversary.random_adv import RandomLinkAdversary
from repro.core.dac import DACProcess
from repro.net.ports import identity_ports
from repro.sim.persistence import (
    load_trace,
    replay_adversary,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.sim.runner import run_consensus
from repro.sim.trace import ExecutionTrace

from tests.helpers import spread_inputs


def run_dac(adversary, n=5, seed=3, max_rounds=20):
    ports = identity_ports(n)
    inputs = spread_inputs(n)
    procs = {
        v: DACProcess(n, 0, inputs[v], v, epsilon=1e-2) for v in range(n)
    }
    return run_consensus(
        procs, adversary, ports, epsilon=1e-2, max_rounds=max_rounds, seed=seed
    )


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        report = run_dac(RandomLinkAdversary(0.5))
        original = report.trace
        rebuilt = trace_from_dict(trace_to_dict(original))
        assert len(rebuilt) == len(original)
        for t in range(len(original)):
            assert rebuilt.at(t) == original.at(t)
            assert rebuilt.rounds[t].states == original.rounds[t].states
            assert rebuilt.rounds[t].delivered == original.rounds[t].delivered
            assert rebuilt.rounds[t].bits == original.rounds[t].bits
            assert rebuilt.rounds[t].live_senders == original.rounds[t].live_senders

    def test_file_round_trip(self, tmp_path):
        report = run_dac(StaticAdversary())
        path = tmp_path / "trace.json"
        save_trace(report.trace, path)
        rebuilt = load_trace(path)
        assert len(rebuilt) == len(report.trace)
        assert rebuilt.at(0) == report.trace.at(0)

    def test_version_checked(self):
        payload = trace_to_dict(ExecutionTrace(3))
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            trace_from_dict(payload)


class TestReplay:
    def test_replay_reproduces_the_execution(self):
        # Record a stochastic run, then replay its links against fresh
        # processes: outputs must match exactly (the algorithms are
        # deterministic given deliveries).
        first = run_dac(RandomLinkAdversary(0.5))
        replayed = run_dac(replay_adversary(first.trace))
        assert replayed.outputs == first.outputs
        assert replayed.rounds == first.rounds
        for t in range(min(first.rounds, replayed.rounds)):
            assert replayed.trace.at(t) == first.trace.at(t)

    def test_replay_goes_silent_past_recording(self):
        first = run_dac(StaticAdversary(), max_rounds=3)
        adv = replay_adversary(first.trace)
        follow = run_dac(adv, max_rounds=6)
        assert len(follow.trace.at(4)) == 0  # beyond the recording

    def test_replay_can_loop(self):
        first = run_dac(StaticAdversary(), max_rounds=2)
        adv = replay_adversary(first.trace, repeat=True)
        follow = run_dac(adv, max_rounds=6)
        assert follow.trace.at(4) == first.trace.at(0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty trace"):
            replay_adversary(ExecutionTrace(3))

    def test_promise_passthrough(self):
        first = run_dac(StaticAdversary(), max_rounds=2)
        adv = replay_adversary(first.trace, promise=(1, 4))
        assert adv.promised_dynadegree() == (1, 4)
