"""Integration tests: DAC end-to-end (Theorem 3 and Section IV).

Each test runs the real algorithm on the real engine against a real
adversary and asserts the paper's guarantees: termination, validity,
epsilon-agreement, the 1/2 convergence rate, and the T * p_end round
bound -- at the exact feasibility boundary n = 2f + 1 with f crashes
and D = floor(n/2).
"""

import pytest

from repro.adversary.constrained import (
    LastMinuteQuorumAdversary,
    PhaseSkewAdversary,
    RotatingQuorumAdversary,
)
from repro.adversary.periodic import figure1_adversary
from repro.core.dac import DACProcess
from repro.core.phases import dac_end_phase, rounds_upper_bound
from repro.faults.base import FaultPlan
from repro.faults.crash import CrashEvent, partial_crash
from repro.net.ports import random_ports
from repro.sim.rng import child_rng, spawn_inputs
from repro.sim.runner import run_consensus
from repro.workloads import build_dac_execution


class TestBoundaryCorrectness:
    """n = 2f+1, f crashes, D = floor(n/2): the tight corner."""

    @pytest.mark.parametrize("n", [5, 9, 15])
    @pytest.mark.parametrize("window", [1, 3])
    def test_correct_at_the_boundary(self, n, window):
        f = (n - 1) // 2
        report = run_consensus(
            **build_dac_execution(n=n, f=f, epsilon=1e-3, seed=n * 10 + window, window=window)
        )
        assert report.correct, report.summary()
        assert report.dynadegree_verified is True

    @pytest.mark.parametrize("selector", ["rotate", "nearest", "random"])
    def test_correct_under_every_selector(self, selector):
        report = run_consensus(
            **build_dac_execution(n=9, f=4, epsilon=1e-3, seed=7, selector=selector)
        )
        assert report.correct, f"{selector}: {report.summary()}"

    def test_agreement_tightens_with_epsilon(self):
        spreads = []
        for eps in (0.1, 0.01, 0.001):
            report = run_consensus(
                **build_dac_execution(n=9, f=4, epsilon=eps, seed=3)
            )
            assert report.correct
            spreads.append(report.output_spread)
            assert report.output_spread <= eps + 1e-9
        assert spreads[2] <= spreads[0]


class TestConvergenceRate:
    def test_measured_rate_never_exceeds_half(self):
        # Remark 1: range(V(p+1)) <= range(V(p)) / 2, every phase.
        for seed in range(5):
            report = run_consensus(
                **build_dac_execution(n=9, f=4, epsilon=1e-4, seed=seed)
            )
            assert report.correct
            for rate in report.convergence_rates:
                assert rate <= 0.5 + 1e-9, report.convergence_rates

    def test_worst_case_adversary_achieves_half(self):
        # The nearest-value selector realizes the worst case: some
        # phase contracts by exactly (almost) 1/2.
        report = run_consensus(
            **build_dac_execution(n=15, f=0, epsilon=1e-4, seed=2, selector="nearest")
        )
        assert report.correct
        assert max(report.convergence_rates) > 0.4


class TestRoundComplexity:
    @pytest.mark.parametrize("window", [1, 2, 4])
    def test_rounds_within_paper_bound(self, window):
        # Worst case T * p_end (Section VII), with slack for start-up.
        epsilon = 1e-3
        report = run_consensus(
            **build_dac_execution(n=9, f=0, epsilon=epsilon, seed=1, window=window)
        )
        assert report.correct
        bound = rounds_upper_bound(window, dac_end_phase(epsilon))
        assert report.rounds <= bound + 2 * window

    def test_last_minute_adversary_forces_full_windows(self):
        # With all delivery on window boundaries, rounds ~ T * phases.
        window = 4
        report = run_consensus(
            **build_dac_execution(n=7, f=0, epsilon=1e-2, seed=5, window=window)
        )
        assert report.correct
        assert report.rounds >= window * 2  # several full windows used


class TestCrashRobustness:
    def test_partial_broadcast_crash(self):
        # A node dying mid-broadcast (message reaches a strict subset)
        # must not break agreement among survivors.
        n, f = 9, 4
        ports = random_ports(n, child_rng(11, "ports"))
        inputs = spawn_inputs(11, n)
        crashes = {
            8: partial_crash(8, 2, receivers={0, 1}),
            7: CrashEvent(7, 4),
        }
        plan = FaultPlan(n, crashes=crashes)
        procs = {
            v: DACProcess(n, f, inputs[v], ports.self_port(v), epsilon=1e-3)
            for v in plan.non_byzantine
        }
        report = run_consensus(
            procs,
            RotatingQuorumAdversary(n // 2),
            ports,
            epsilon=1e-3,
            f=f,
            fault_plan=plan,
            max_rounds=400,
        )
        assert report.correct, report.summary()

    def test_all_f_crash_in_round_zero(self):
        n, f = 9, 4
        ports = random_ports(n, child_rng(13, "ports"))
        inputs = spawn_inputs(13, n)
        plan = FaultPlan(n, crashes={v: CrashEvent(v, 0) for v in range(5, 9)})
        procs = {
            v: DACProcess(n, f, inputs[v], ports.self_port(v), epsilon=1e-3)
            for v in plan.non_byzantine
        }
        report = run_consensus(
            procs,
            RotatingQuorumAdversary(n // 2),
            ports,
            epsilon=1e-3,
            f=f,
            fault_plan=plan,
            max_rounds=400,
        )
        assert report.correct, report.summary()
        # Dead-on-arrival nodes never output; survivors all do.
        assert set(report.outputs) == set(range(5))


class TestJumpRule:
    def test_jump_rescues_skewed_nodes(self):
        n = 9
        ports = random_ports(n, child_rng(17, "ports"))
        inputs = spawn_inputs(17, n)

        def run(jump):
            procs = {
                v: DACProcess(
                    n, 0, inputs[v], ports.self_port(v), epsilon=1e-2, enable_jump=jump
                )
                for v in range(n)
            }
            return run_consensus(
                procs,
                PhaseSkewAdversary(n // 2, slow={6, 7, 8}, window=3),
                ports,
                epsilon=1e-2,
                max_rounds=200,
            )

        with_jump = run(True)
        without_jump = run(False)
        assert with_jump.correct
        assert not without_jump.terminated  # the ablation stalls


class TestFigure1Network:
    def test_dac_converges_on_figure1_adversary(self):
        # n=3 needs D = floor(3/2) = 1 over some window; Figure 1's
        # adversary provides exactly (2, 1), so DAC (f=0) must work.
        n = 3
        ports = random_ports(n, child_rng(19, "ports"))
        inputs = [0.0, 0.5, 1.0]
        procs = {
            v: DACProcess(n, 0, inputs[v], ports.self_port(v), epsilon=1e-2)
            for v in range(n)
        }
        report = run_consensus(
            procs, figure1_adversary(), ports, epsilon=1e-2, max_rounds=200
        )
        assert report.correct, report.summary()
        assert report.dynadegree_promise == (2, 1)
        assert report.dynadegree_verified is True
