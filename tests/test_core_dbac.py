"""Unit tests for DBAC (Algorithm 2), exercised message by message.

Pins: the quorum floor((n+3f)/2)+1, the phase >= p acceptance rule, the
f+1-bounded recording lists, the trimmed-midpoint update, the absence
of jumping, and the self-value store at phase start (fidelity note 1).
"""

import pytest

from repro.core.dbac import DBACProcess
from repro.sim.messages import StateMessage
from repro.sim.node import Delivery


def dbac(n=6, f=1, x=0.5, port=0, end_phase=3, **kwargs):
    return DBACProcess(n, f, x, port, end_phase=end_phase, **kwargs)


def msg(value, phase):
    return StateMessage(value, phase)


class TestInitialization:
    def test_quorum_formula(self):
        assert dbac(n=6, f=1).quorum == 5  # floor(9/2)+1
        assert dbac(n=11, f=2).quorum == 9  # floor(17/2)+1
        assert dbac(n=16, f=3).quorum == 13  # floor(25/2)+1

    def test_trim_depth(self):
        assert dbac(f=1).trim == 2
        assert DBACProcess(11, 2, 0.0, 0, end_phase=1).trim == 3

    def test_own_value_stored_at_start(self):
        p = dbac(x=0.4)
        low, high = p.recording_lists
        assert low == (0.4,) and high == (0.4,)
        assert p.received_count == 1

    def test_quorum_override(self):
        assert dbac(quorum_override=4).quorum == 4

    def test_default_end_phase_uses_equation6(self):
        p = DBACProcess(6, 1, 0.0, 0, epsilon=0.5)
        # log(0.5)/log(1 - 2^-6) = 44.04... -> 45
        assert p.end_phase == 45

    def test_zero_end_phase_outputs_immediately(self):
        p = dbac(end_phase=0, x=0.3)
        assert p.has_output() and p.output() == 0.3


class TestAcceptanceRule:
    def test_current_phase_accepted(self):
        p = dbac(x=0.0)
        p.deliver([Delivery(1, msg(0.5, 0))])
        assert p.received_count == 2

    def test_future_phase_accepted_without_jump(self):
        # DBAC stores higher-phase values but never jumps.
        p = dbac(x=0.0)
        p.deliver([Delivery(1, msg(0.5, 7))])
        assert p.received_count == 2
        assert p.phase == 0
        assert p.value == 0.0

    def test_stale_phase_rejected(self):
        p = dbac(x=0.0, quorum_override=2)
        p.deliver([Delivery(1, msg(1.0, 0))])  # quorum 2 -> phase 1
        assert p.phase == 1
        p.deliver([Delivery(2, msg(0.3, 0))])  # phase 0 < 1: ignored
        assert p.received_count == 1

    def test_port_counted_once_per_phase(self):
        p = dbac(x=0.0)
        p.deliver([Delivery(1, msg(0.5, 0)), Delivery(1, msg(0.6, 0))])
        assert p.received_count == 2

    def test_ports_refresh_after_phase_advance(self):
        p = dbac(x=0.0, quorum_override=2)
        p.deliver([Delivery(1, msg(1.0, 0))])
        assert p.phase == 1
        p.deliver([Delivery(1, msg(1.0, 1))])
        assert p.phase == 2


class TestRecordingLists:
    def test_bounded_to_f_plus_one(self):
        # quorum_override=6 keeps the node in phase 0 while we feed it.
        p = dbac(n=6, f=1, x=0.5, quorum_override=6)
        for port, value in enumerate([0.1, 0.9, 0.3, 0.7], start=1):
            p.deliver([Delivery(port, msg(value, 0))])
        low, high = p.recording_lists
        assert len(low) == 2 and len(high) == 2
        assert low == (0.1, 0.3)  # two smallest of {0.5,0.1,0.9,0.3,0.7}
        assert high == (0.7, 0.9)  # two largest

    def test_one_value_can_enter_both_lists(self):
        p = dbac(x=0.5)
        low, high = p.recording_lists
        assert 0.5 in low and 0.5 in high

    def test_trimmed_midpoint_update(self):
        # n=6, f=1, quorum 5: self 0.5 + four others.
        p = dbac(n=6, f=1, x=0.5, end_phase=3)
        batch = [
            Delivery(1, msg(0.0, 0)),
            Delivery(2, msg(1.0, 0)),
            Delivery(3, msg(0.2, 0)),
            Delivery(4, msg(0.8, 0)),
        ]
        p.deliver(batch)
        assert p.phase == 1
        # Sorted stored: 0.0 0.2 0.5 0.8 1.0; R_low=[0,0.2] R_high=[0.8,1]
        # update = (max(R_low) + min(R_high)) / 2 = (0.2 + 0.8)/2 = 0.5
        assert p.value == pytest.approx(0.5)

    def test_byzantine_extremes_are_clipped(self):
        # A single wild value (f=1) cannot drag the update outside the
        # honest range: it lands at the edge of a trimming list.
        p = dbac(n=6, f=1, x=0.5, end_phase=3)
        batch = [
            Delivery(1, msg(1000.0, 0)),  # Byzantine lie
            Delivery(2, msg(0.4, 0)),
            Delivery(3, msg(0.6, 0)),
            Delivery(4, msg(0.5, 0)),
        ]
        p.deliver(batch)
        # Stored: 0.5self 1000 0.4 0.6 0.5; R_low=[0.4,0.5] R_high=[0.6,1000]
        # update = (0.5 + 0.6)/2 = 0.55: inside honest hull.
        assert p.value == pytest.approx(0.55)
        assert 0.4 <= p.value <= 0.6

    def test_reset_reseeds_own_value(self):
        p = dbac(n=6, f=1, x=0.0, quorum_override=2, end_phase=5)
        p.deliver([Delivery(1, msg(1.0, 0))])
        assert p.phase == 1
        low, high = p.recording_lists
        assert low == (p.value,) and high == (p.value,)


class TestOutput:
    def test_outputs_at_end_phase_and_freezes(self):
        p = dbac(x=0.0, quorum_override=2, end_phase=2)
        p.deliver([Delivery(1, msg(1.0, 0))])
        p.deliver([Delivery(1, msg(1.0, 1))])
        assert p.has_output()
        frozen = p.output()
        p.deliver([Delivery(2, msg(0.0, 2))])
        assert p.output() == frozen

    def test_output_before_termination_raises(self):
        with pytest.raises(RuntimeError, match="not terminated"):
            dbac().output()

    def test_keeps_broadcasting_after_output(self):
        p = dbac(x=0.3, end_phase=0)
        out = p.broadcast()
        assert out.value == 0.3
        assert out.phase == 0


class TestStateKey:
    def test_distinguishes_states(self):
        a, b = dbac(x=0.1), dbac(x=0.1)
        assert a.state_key() == b.state_key()
        a.deliver([Delivery(1, msg(0.9, 0))])
        assert a.state_key() != b.state_key()
