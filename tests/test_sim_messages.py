"""Unit tests for repro.sim.messages: payloads and bit accounting."""

import pytest

from repro.sim.messages import PHASE_BITS, VALUE_BITS, StateMessage, message_bits


class TestStateMessage:
    def test_fields(self):
        msg = StateMessage(0.5, 3)
        assert msg.value == 0.5
        assert msg.phase == 3
        assert msg.history == ()

    def test_negative_phase_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            StateMessage(0.1, -1)

    def test_immutability(self):
        msg = StateMessage(0.5, 1)
        with pytest.raises(AttributeError):
            msg.value = 0.9

    def test_base_bits(self):
        assert StateMessage(0.0, 0).bits() == VALUE_BITS + PHASE_BITS

    def test_piggyback_bits_scale_linearly(self):
        base = StateMessage(0.0, 0).bits()
        one = StateMessage(0.0, 0, ((0.5, 1),)).bits()
        three = StateMessage(0.0, 0, ((0.5, 1), (0.2, 2), (0.9, 0))).bits()
        per_entry = one - base
        assert per_entry == VALUE_BITS + PHASE_BITS
        assert three == base + 3 * per_entry

    def test_entries_lists_current_first(self):
        msg = StateMessage(0.7, 2, ((0.1, 1),))
        assert msg.entries() == ((0.7, 2), (0.1, 1))

    def test_hashable(self):
        assert len({StateMessage(0.1, 0), StateMessage(0.1, 0)}) == 1


class TestMessageBits:
    def test_state_message_uses_own_accounting(self):
        msg = StateMessage(0.3, 2, ((0.1, 1),))
        assert message_bits(msg) == msg.bits()

    def test_unknown_payload_gets_floor(self):
        assert message_bits("hello") == VALUE_BITS

    def test_duck_typed_bits(self):
        class Custom:
            def bits(self):
                return 7

        assert message_bits(Custom()) == 7
