"""Seeded randomized-grid differential tests.

Fuzzed (n, fault plan, adversary, selector, rounds) configurations run
through the full executor suite of the shared harness
(:mod:`tests.helpers`): the serial port-major sweep (reference), the
legacy untraced loop, fully traced execution, both batch backends, a
``workers=4`` pool and the pooled *batched* leg (persistent pool +
shared-memory arenas + guided chunking) must agree on full
``state_key`` / rounds / outputs for every configuration.

The grids are *deterministically* fuzzed from a fixed master-seed
matrix (so CI runs are reproducible), and any divergence prints the
complete offending config -- lane seeds included -- via the harness's
assertion message, so one paste reproduces it:

    from tests.helpers import assert_equivalent_runs
    assert_equivalent_runs([<printed config>])

Override the matrix locally with ``REPRO_FUZZ_SEEDS=1,2,3`` (and widen
it with ``REPRO_FUZZ_CONFIGS=<count per seed>``) to fuzz fresh grids.
"""

import os
import random

import pytest

from repro.adversary.mobile import MOBILE_MODES
from tests.helpers import assert_equivalent_runs, differential_executors

# The fixed seed matrix CI runs; env overrides for local exploration.
_DEFAULT_MASTER_SEEDS = (101, 202, 303)
MASTER_SEEDS = tuple(
    int(s)
    for s in os.environ.get(
        "REPRO_FUZZ_SEEDS", ",".join(map(str, _DEFAULT_MASTER_SEEDS))
    ).split(",")
)
CONFIGS_PER_SEED = int(os.environ.get("REPRO_FUZZ_CONFIGS", "8"))

_DBAC_STRATEGIES = ("extreme", "pin-high", "pin-low", "phase-liar", "random")


def fuzz_configs(master_seed: int, count: int) -> list[dict]:
    """``count`` valid random configs drawn from ``master_seed``.

    Samples across all three scenario families and their full legal
    parameter space: crash counts up to the DAC bound, both enforcing
    selectors, every vectorizable (and one non-vectorizable) Byzantine
    strategy, all mobile-omission modes, windows 1..3, and capped-round
    runs (so unstopped lanes are compared too, not just terminating
    ones).
    """
    rng = random.Random(master_seed)
    configs: list[dict] = []
    for _ in range(count):
        family = rng.choice(("dac", "dac", "dbac", "mobile", "baseline"))
        seeds = tuple(rng.randrange(10_000) for _ in range(rng.randint(1, 3)))
        if family == "dac":
            n = rng.randrange(5, 14)
            f = rng.randint(0, (n - 1) // 2)
            config = {
                "family": "dac",
                "n": n,
                "f": f,
                "crash_nodes": rng.randint(0, f),
                "window": rng.randint(1, 3),
                "selector": rng.choice(("rotate", "nearest")),
                "seeds": seeds,
            }
            if rng.random() < 0.25:
                # Capped run: every executor must agree on the exact
                # mid-flight states of lanes that never stop.
                config["max_rounds"] = rng.randint(3, 12)
        elif family == "dbac":
            f = rng.randint(0, 2)
            n = 5 * f + 1 + rng.randrange(1, 4)
            config = {
                "family": "dbac",
                "n": n,
                "f": f,
                "window": rng.randint(1, 2),
                "selector": rng.choice(("nearest", "rotate")),
                "strategy": rng.choice(_DBAC_STRATEGIES),
                "seeds": seeds,
            }
        elif family == "mobile":
            config = {
                "family": "mobile",
                "n": rng.randrange(4, 10),
                "mode": rng.choice(MOBILE_MODES),
                "seeds": seeds,
            }
        else:
            config = {
                "family": "baseline",
                "n": rng.randrange(4, 10),
                "algorithm": rng.choice(("midpoint", "trimmed")),
                "f": rng.randint(0, 2),
                "window": rng.randint(1, 3),
                "selector": rng.choice(("rotate", "nearest", "random")),
                "seeds": seeds,
            }
            if rng.random() < 0.5:
                # Small explicit budgets (0 included: output at init)
                # keep the fixed-round semantics honest across kernels.
                config["num_rounds"] = rng.randint(0, 8)
        configs.append(config)
    return configs


@pytest.mark.parametrize("master_seed", MASTER_SEEDS)
def test_fuzzed_grids_bit_identical_across_executors(master_seed):
    grid = fuzz_configs(master_seed, CONFIGS_PER_SEED)
    assert_equivalent_runs(grid, differential_executors(pooled=3))
