"""Unit tests for the ready-made execution builders."""

import pytest

from repro.sim.runner import run_consensus
from repro.workloads import (
    build_dac_execution,
    build_dbac_execution,
    dac_degree,
    dbac_degree,
    theorem9_part2_execution,
    theorem9_split_execution,
    theorem10_split_execution,
)


class TestDegreeThresholds:
    def test_dac_degree(self):
        assert dac_degree(9) == 4
        assert dac_degree(10) == 5

    def test_dbac_degree(self):
        assert dbac_degree(6, 1) == 4
        assert dbac_degree(11, 2) == 8
        assert dbac_degree(16, 3) == 12


class TestBuildDac:
    def test_resilience_bound_enforced(self):
        with pytest.raises(ValueError, match="2f"):
            build_dac_execution(n=8, f=4)

    def test_crash_budget_enforced(self):
        with pytest.raises(ValueError, match="fault bound"):
            build_dac_execution(n=9, f=2, crash_nodes=3)

    def test_default_crashes_f_nodes(self):
        ex = build_dac_execution(n=9, f=4)
        assert len(ex["fault_plan"].crashes) == 4
        assert set(ex["fault_plan"].crashes) == {5, 6, 7, 8}

    def test_processes_cover_all_nodes(self):
        ex = build_dac_execution(n=7, f=3)
        assert set(ex["processes"]) == set(range(7))

    def test_window_selects_adversary(self):
        ex1 = build_dac_execution(n=5, f=0, window=1)
        ex3 = build_dac_execution(n=5, f=0, window=3)
        assert ex1["adversary"].promised_dynadegree() == (1, 2)
        assert ex3["adversary"].promised_dynadegree() == (3, 2)

    def test_runs_correctly(self):
        report = run_consensus(**build_dac_execution(n=7, f=3, epsilon=1e-2, seed=1))
        assert report.correct
        assert report.dynadegree_verified


class TestBuildDbac:
    def test_resilience_bound_enforced(self):
        with pytest.raises(ValueError, match="5f"):
            build_dbac_execution(n=10, f=2)

    def test_byzantine_assignment(self):
        ex = build_dbac_execution(n=11, f=2)
        assert set(ex["fault_plan"].byzantine) == {9, 10}
        assert set(ex["processes"]) == set(range(9))

    def test_custom_byzantine_factory(self):
        from repro.faults.byzantine import FixedValueByzantine

        ex = build_dbac_execution(
            n=6, f=1, byzantine_factory=lambda node: FixedValueByzantine(0.0)
        )
        assert isinstance(ex["fault_plan"].byzantine[5], FixedValueByzantine)

    def test_runs_correctly_oracle(self):
        report = run_consensus(**build_dbac_execution(n=6, f=1, epsilon=5e-2, seed=3))
        assert report.terminated
        assert report.validity
        assert report.epsilon_agreement


class TestTheoremScenarios:
    def test_theorem9_eager_disagrees(self):
        report = run_consensus(**theorem9_split_execution(n=8, seed=0))
        assert report.terminated
        assert not report.epsilon_agreement
        outputs = set(report.outputs.values())
        assert 0.0 in outputs and 1.0 in outputs

    def test_theorem9_plain_dac_stalls(self):
        report = run_consensus(
            **theorem9_split_execution(n=8, seed=0, eager_quorum=False, max_rounds=150)
        )
        assert not report.terminated
        assert report.outputs == {}

    def test_theorem9_needs_reasonable_n(self):
        with pytest.raises(ValueError, match="n >= 4"):
            theorem9_split_execution(n=3)

    def test_theorem9_part2_disagrees_despite_stability(self):
        report = run_consensus(**theorem9_part2_execution(n=8, seed=1))
        assert report.terminated
        assert not report.epsilon_agreement

    def test_theorem9_part2_needs_even_n(self):
        with pytest.raises(ValueError, match="even"):
            theorem9_part2_execution(n=7)

    def test_theorem10_eager_disagrees(self):
        report = run_consensus(**theorem10_split_execution(f=1, seed=2))
        assert report.terminated
        assert not report.epsilon_agreement
        # Exclusive listeners land on opposite sides.
        assert report.outputs[0] < 0.1
        assert report.outputs[5] > 0.9

    def test_theorem10_plain_dbac_stalls(self):
        report = run_consensus(
            **theorem10_split_execution(f=1, seed=2, eager_quorum=False, max_rounds=150)
        )
        assert not report.terminated

    def test_theorem10_trace_is_one_short_of_required(self):
        ex = theorem10_split_execution(f=1, seed=2)
        promise = ex["adversary"].promised_dynadegree()
        assert promise == (1, dbac_degree(6, 1) - 1)

    def test_theorem10_needs_faults(self):
        with pytest.raises(ValueError, match="f >= 1"):
            theorem10_split_execution(f=0)


class TestPicklableTrials:
    """The module-level trial functions for parallel comparative grids."""

    def test_dbac_trial_summary_and_boundary_default(self):
        from repro.workloads import run_dbac_trial

        summary = run_dbac_trial(n=6, seed=3)  # f defaults to (6-1)//5 = 1
        assert set(summary) == {"rounds", "spread", "terminated", "correct"}
        assert summary["terminated"]
        assert summary["correct"]

    def test_dbac_trial_rejects_unknown_strategy(self):
        from repro.workloads import run_dbac_trial

        with pytest.raises(ValueError, match="strategy"):
            run_dbac_trial(n=6, strategy="benevolent")

    def test_baseline_trial_midpoint_and_trimmed(self):
        from repro.workloads import run_baseline_trial

        midpoint = run_baseline_trial(n=9, seed=1)
        assert midpoint["terminated"]
        trimmed = run_baseline_trial(n=9, algorithm="trimmed", f=1, seed=1)
        assert trimmed["terminated"]
        with pytest.raises(ValueError, match="algorithm"):
            run_baseline_trial(n=9, algorithm="gossip")

    def test_trials_fan_out_over_worker_processes(self):
        # The ROADMAP contract: DBAC and baseline grids must run through
        # Sweep.run(workers=N) -- i.e. the functions pickle and the
        # parallel records equal the serial records.
        from repro.bench.sweep import Sweep
        from repro.workloads import run_baseline_trial, run_dbac_trial

        for fn, grid in (
            (run_dbac_trial, {"n": [6, 11]}),
            (run_baseline_trial, {"n": [9], "algorithm": ["midpoint", "trimmed"]}),
        ):
            serial = Sweep(grid=grid, repeats=2)
            parallel = Sweep(grid=grid, repeats=2)
            serial.run(fn, workers=1)
            parallel.run(fn, workers=2)
            assert serial.records == parallel.records

    def test_baseline_breaks_where_dac_survives(self):
        # The comparative point of the grids: once the window-T
        # adversary withholds deliveries (message loss), the reliable-
        # channel baseline loses epsilon-agreement -- it burns its
        # round budget on silent rounds -- while DAC stays correct
        # under the identical adversary and input stream.
        from repro.workloads import run_baseline_trial, run_dac_trial

        dac = run_dac_trial(n=9, f=0, epsilon=1e-3, window=3, seed=0)
        baseline = run_baseline_trial(n=9, epsilon=1e-3, window=3, seed=0)
        assert dac["correct"]
        assert baseline["terminated"] and not baseline["correct"]
