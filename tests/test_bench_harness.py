"""Tests for the benchmark harness itself (tables, registry)."""

import pytest

from repro.bench.registry import EXPERIMENTS, run_experiment
from repro.bench.tables import TableResult, render_table


class TestTableResult:
    def test_row_width_checked(self):
        table = TableResult("T", "title", ["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError, match="columns"):
            table.add_row(1, 2, 3)

    def test_cell_formatting(self):
        table = TableResult("T", "title", ["a", "b", "c"])
        table.add_row(True, 0.123456, "text")
        assert table.rows[0] == ["yes", "0.1235", "text"]

    def test_fail_flips_status_and_records_reason(self):
        table = TableResult("T", "title", ["a"])
        assert table.passed
        table.fail("broke")
        assert not table.passed
        assert any("broke" in note for note in table.notes)

    def test_render_layout(self):
        table = TableResult("T1", "demo", ["col", "value"])
        table.add_row("x", 1)
        table.add_note("a note")
        text = render_table(table)
        lines = text.splitlines()
        assert lines[0].startswith("== T1: demo [PASS]")
        assert "col" in lines[1] and "value" in lines[1]
        assert set(lines[2].replace(" ", "")) == {"-"}
        assert "a note" in text

    def test_render_fail_status(self):
        table = TableResult("T1", "demo", ["col"])
        table.fail("nope")
        assert "[FAIL]" in render_table(table)


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "F1", "E1", "E2", "E3", "E4", "E5",
            "I1", "I2", "I4",
            "X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8",
            "S1", "S2", "S3", "S4",
        }
        assert set(EXPERIMENTS) == expected

    def test_case_insensitive_lookup(self):
        result = run_experiment("f1")
        assert result.experiment_id == "F1"
        assert result.passed

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("Q7")

    def test_every_experiment_declares_headers(self):
        # Registry hygiene: ids match the functions' own table ids for
        # the quick smoke-testable ones.
        result = run_experiment("F1", quick=True)
        assert result.headers
        assert result.rows
