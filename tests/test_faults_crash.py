"""Unit tests for crash events and schedules."""

import pytest

from repro.faults.crash import (
    CrashEvent,
    partial_crash,
    simultaneous_crashes,
    staggered_crashes,
)


class TestCrashEvent:
    def test_clean_crash_timeline(self):
        event = CrashEvent(node=2, round=3)
        assert event.sends_fully_at(2)
        assert not event.sends_fully_at(3)
        assert event.send_targets_at(2) is None
        assert event.send_targets_at(3) == frozenset()
        assert event.send_targets_at(4) == frozenset()
        assert event.processes_at(2)
        assert not event.processes_at(3)

    def test_partial_crash_whitelist_only_at_crash_round(self):
        event = CrashEvent(node=1, round=2, receivers=frozenset({0, 3}))
        assert event.send_targets_at(1) is None
        assert event.send_targets_at(2) == frozenset({0, 3})
        assert event.send_targets_at(3) == frozenset()
        assert not event.sends_fully_at(2)

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CrashEvent(0, -1)

    def test_self_delivery_in_whitelist_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            CrashEvent(1, 0, receivers=frozenset({1}))

    def test_dead_on_arrival(self):
        event = CrashEvent(0, 0)
        assert event.send_targets_at(0) == frozenset()
        assert not event.processes_at(0)


class TestSchedules:
    def test_staggered(self):
        events = staggered_crashes([4, 2, 7], first_round=3, spacing=2)
        assert events[2].round == 3
        assert events[4].round == 5
        assert events[7].round == 7

    def test_staggered_negative_spacing_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            staggered_crashes([1], spacing=-1)

    def test_staggered_deduplicates(self):
        events = staggered_crashes([1, 1, 2])
        assert set(events) == {1, 2}

    def test_simultaneous(self):
        events = simultaneous_crashes([0, 1], at_round=5)
        assert all(e.round == 5 for e in events.values())

    def test_partial_crash_helper(self):
        event = partial_crash(3, 1, receivers=[0, 2])
        assert event.receivers == frozenset({0, 2})
        assert event.round == 1
