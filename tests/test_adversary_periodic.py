"""Unit tests for periodic adversaries and the Figure 1 fixture."""

import pytest

from repro.adversary.periodic import (
    AlternatingAdversary,
    figure1_adversary,
    figure1_base_graph,
)
from repro.faults.base import FaultPlan
from repro.net.dynadegree import check_dynadegree
from repro.net.dynamic import DynamicGraph
from repro.net.graph import DirectedGraph
from repro.sim.rng import child_rng


def trace_of(adversary, n, rounds):
    adversary.setup(n, FaultPlan.fault_free_plan(n), child_rng(0, "adv"))
    dyn = DynamicGraph(n)
    for t in range(rounds):
        dyn.record(adversary.choose(t, None))
    return dyn


class TestAlternatingAdversary:
    def test_cycles(self):
        adv = AlternatingAdversary(3, [[(0, 1)], [(1, 2)], []])
        trace = trace_of(adv, 3, 6)
        assert set(trace.at(0).edges) == {(0, 1)}
        assert set(trace.at(1).edges) == {(1, 2)}
        assert len(trace.at(2)) == 0
        assert set(trace.at(3).edges) == {(0, 1)}
        assert adv.cycle_length == 3

    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError, match="at least one round"):
            AlternatingAdversary(3, [])


class TestFigure1:
    def test_matches_paper_rounds(self):
        trace = trace_of(figure1_adversary(), 3, 4)
        even = {(0, 1), (1, 0), (1, 2), (2, 1)}
        assert set(trace.at(0).edges) == even
        assert len(trace.at(1)) == 0
        assert set(trace.at(2).edges) == even

    def test_promise_is_2_1(self):
        assert figure1_adversary().promised_dynadegree() == (2, 1)

    def test_satisfies_promise_but_not_1_1(self):
        trace = trace_of(figure1_adversary(), 3, 10)
        assert check_dynadegree(trace, 2, 1).holds
        assert not check_dynadegree(trace, 1, 1).holds

    def test_base_graph_is_complete(self):
        assert figure1_base_graph() == DirectedGraph.complete(3)

    def test_chosen_links_within_base_graph(self):
        trace = trace_of(figure1_adversary(), 3, 6)
        base = figure1_base_graph()
        for t in range(len(trace)):
            assert trace.at(t).is_subgraph_of(base)
