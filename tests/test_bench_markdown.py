"""Tests for the markdown report renderer."""

from repro.bench.cli import main as bench_main
from repro.bench.markdown import report_to_markdown, table_to_markdown
from repro.bench.tables import TableResult


def sample_table(passed=True):
    table = TableResult("T1", "demo | with pipe", ["a", "b"])
    table.add_row("x|y", 1.5)
    table.add_note("footnote")
    if not passed:
        table.fail("reason")
    return table


class TestTableToMarkdown:
    def test_structure(self):
        md = table_to_markdown(sample_table())
        lines = md.splitlines()
        assert lines[0].startswith("## T1")
        assert "Status: PASS" in md
        assert "| a | b |" in md
        assert "|---|---|" in md
        assert "> footnote" in md

    def test_pipes_escaped_in_cells(self):
        md = table_to_markdown(sample_table())
        assert "x\\|y" in md

    def test_fail_badge(self):
        md = table_to_markdown(sample_table(passed=False))
        assert "**FAIL**" in md


class TestReportToMarkdown:
    def test_summary_then_sections(self):
        md = report_to_markdown([sample_table(), sample_table(passed=False)])
        assert md.startswith("# Experiment results")
        # Summary table lists both, sections follow.
        assert md.count("## T1") == 2
        assert "**FAIL**" in md

    def test_cli_writes_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        rc = bench_main(["-e", "F1", "--markdown", str(path)])
        assert rc == 0
        content = path.read_text()
        assert "# Experiment results (quick grid)" in content
        assert "## F1" in content
