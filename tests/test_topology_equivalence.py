"""Old-vs-new equivalence: the DirectedGraph shim and native Topology
paths must be bit-identical, across the grids the paper sweeps.

The Topology refactor rewired the graph representation under every
layer (net sources, adversaries, engine routing, batch executor) with
the hard requirement that outputs stay *bit-identical*. This suite
pins that: full ``state_key`` / rounds / outputs equality between

- an engine driven by an adversary whose graphs pass through the
  deprecated ``DirectedGraph`` constructor (the shim path), and the
  same execution on the native adversary (Topology path);
- the serial engine and both ``repro.sim.batch`` backends;

across crash, enforced-rotate and window (last-minute) grids.
"""

import pytest

from repro.adversary.base import MessageAdversary
from repro.net.graph import DirectedGraph
from repro.sim.batch import numpy_available, run_dac_batch
from repro.sim.engine import Engine
from repro.workloads import build_dac_execution

# (n, f, window, selector, crash_nodes): the boundary grids of E1.
GRIDS = [
    pytest.param(9, 0, 1, "rotate", 0, id="enforced-rotate-faultfree"),
    pytest.param(7, 3, 1, "rotate", 3, id="crash-rotate"),
    pytest.param(9, 4, 1, "nearest", 4, id="crash-nearest"),
    pytest.param(9, 4, 3, "rotate", 4, id="window-rotate"),
    pytest.param(6, 2, 2, "nearest", 2, id="window-nearest"),
]

SEEDS = (0, 7)


class _ShimRewrapAdversary(MessageAdversary):
    """Wraps an adversary, round-tripping every chosen graph through the
    deprecated ``DirectedGraph`` constructor from its raw edge list --
    the legacy construction path external callers still use."""

    def __init__(self, inner: MessageAdversary) -> None:
        super().__init__()
        self._inner = inner

    def setup(self, n, fault_plan, rng):
        super().setup(n, fault_plan, rng)
        self._inner.setup(n, fault_plan, rng)

    def choose(self, t, view):
        native = self._inner.choose(t, view)
        shim = DirectedGraph(native.n, list(native.edge_list))
        # Hash-consing: the legacy constructor must resolve to the very
        # same interned instance the native path plays.
        assert shim is native
        return shim

    def promised_dynadegree(self):
        return self._inner.promised_dynadegree()


def _run_engine(kwargs, wrap_shim: bool) -> dict:
    adversary = kwargs["adversary"]
    if wrap_shim:
        adversary = _ShimRewrapAdversary(adversary)
    engine = Engine(
        kwargs["processes"],
        adversary,
        kwargs["ports"],
        fault_plan=kwargs["fault_plan"],
        f=kwargs["f"],
        seed=kwargs["seed"],
        record_trace=False,
    )
    result = engine.run(kwargs["max_rounds"], stop_when=Engine.all_fault_free_output)
    return {
        "rounds": int(result),
        "stopped": result.stopped,
        "outputs": {
            v: engine.processes[v].output()
            for v in sorted(engine.fault_plan.fault_free)
            if engine.processes[v].has_output()
        },
        "state_keys": {
            node: proc.state_key() for node, proc in engine.processes.items()
        },
    }


@pytest.mark.parametrize("n, f, window, selector, crash_nodes", GRIDS)
@pytest.mark.parametrize("seed", SEEDS)
class TestShimVsNative:
    def test_full_state_equality(self, n, f, window, selector, crash_nodes, seed):
        build = lambda: build_dac_execution(  # noqa: E731
            n=n,
            f=f,
            seed=seed,
            window=window,
            selector=selector,
            crash_nodes=crash_nodes,
        )
        native = _run_engine(build(), wrap_shim=False)
        shimmed = _run_engine(build(), wrap_shim=True)
        assert shimmed == native


@pytest.mark.parametrize("n, f, window, selector, crash_nodes", GRIDS)
class TestSerialVsBatchBackends:
    def _serial_lanes(self, n, f, window, selector, crash_nodes):
        return run_dac_batch(
            n,
            f,
            list(SEEDS),
            window=window,
            selector=selector,
            crash_nodes=crash_nodes,
            backend="python",
        )

    def test_python_backend_matches_serial_engines(
        self, n, f, window, selector, crash_nodes
    ):
        # The python backend *is* lock-step over serial engines; pin
        # its state keys against independent serial runs.
        lanes = self._serial_lanes(n, f, window, selector, crash_nodes)
        for seed, lane in zip(SEEDS, lanes):
            serial = _run_engine(
                build_dac_execution(
                    n=n,
                    f=f,
                    seed=seed,
                    window=window,
                    selector=selector,
                    crash_nodes=crash_nodes,
                ),
                wrap_shim=False,
            )
            assert lane.rounds == serial["rounds"]
            assert lane.stopped == serial["stopped"]
            assert lane.outputs == serial["outputs"]
            assert lane.state_keys == serial["state_keys"]

    def test_numpy_backend_matches_python_backend(
        self, n, f, window, selector, crash_nodes
    ):
        if selector != "rotate":
            pytest.skip("vectorized kernel replicates the rotate selector only")
        if not numpy_available():
            pytest.skip("numpy not installed")
        python_lanes = self._serial_lanes(n, f, window, selector, crash_nodes)
        numpy_lanes = run_dac_batch(
            n,
            f,
            list(SEEDS),
            window=window,
            selector=selector,
            crash_nodes=crash_nodes,
            backend="numpy",
        )
        assert numpy_lanes == python_lanes
