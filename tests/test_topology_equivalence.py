"""Old-vs-new equivalence: the DirectedGraph shim and native Topology
paths must be bit-identical, across the grids the paper sweeps.

The Topology refactor rewired the graph representation under every
layer (net sources, adversaries, engine routing, batch executor) with
the hard requirement that outputs stay *bit-identical*. This suite
pins that through the shared differential harness
(:func:`tests.helpers.assert_equivalent_runs`): full ``state_key`` /
rounds / outputs equality between

- an engine driven by an adversary whose graphs pass through the
  deprecated ``DirectedGraph`` constructor (the shim path), and the
  same execution on the native adversary (Topology path);
- the serial engine (port-major sweep *and* the legacy loop) and both
  ``repro.sim.batch`` backends;

across crash, enforced-rotate and window (last-minute) grids.
"""

from repro.adversary.base import MessageAdversary
from repro.net.graph import DirectedGraph
from tests.helpers import (
    assert_equivalent_runs,
    differential_executors,
    serial_executor,
)

# The boundary grids of E1, two seeds per config; crash counts and
# windows as in the original copy-pasted loops.
GRIDS = [
    {"family": "dac", "n": 9, "f": 0, "crash_nodes": 0, "seeds": (0, 7)},
    {"family": "dac", "n": 7, "f": 3, "crash_nodes": 3, "seeds": (0, 7)},
    {
        "family": "dac",
        "n": 9,
        "f": 4,
        "crash_nodes": 4,
        "selector": "nearest",
        "seeds": (0, 7),
    },
    {"family": "dac", "n": 9, "f": 4, "crash_nodes": 4, "window": 3, "seeds": (0, 7)},
    {
        "family": "dac",
        "n": 6,
        "f": 2,
        "crash_nodes": 2,
        "window": 2,
        "selector": "nearest",
        "seeds": (0, 7),
    },
]


class _ShimRewrapAdversary(MessageAdversary):
    """Wraps an adversary, round-tripping every chosen graph through the
    deprecated ``DirectedGraph`` constructor from its raw edge list --
    the legacy construction path external callers still use."""

    def __init__(self, inner: MessageAdversary) -> None:
        super().__init__()
        self._inner = inner

    def setup(self, n, fault_plan, rng):
        super().setup(n, fault_plan, rng)
        self._inner.setup(n, fault_plan, rng)

    def choose(self, t, view):
        native = self._inner.choose(t, view)
        shim = DirectedGraph(native.n, list(native.edge_list))
        # Hash-consing: the legacy constructor must resolve to the very
        # same interned instance the native path plays.
        assert shim is native
        return shim

    def promised_dynadegree(self):
        return self._inner.promised_dynadegree()


def test_shim_native_and_batch_backends_bit_identical():
    """One harness pass covers the whole old-vs-new matrix: native
    sweep (reference) == shim-rewrapped == legacy loop == traced ==
    both batch backends, full state keys throughout."""
    executors = differential_executors(workers=None)
    executors["shim-rewrap"] = serial_executor(wrap_adversary=_ShimRewrapAdversary)
    assert_equivalent_runs(GRIDS, executors)
