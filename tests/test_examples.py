"""Smoke tests: every example script must run clean (deliverable guard).

Each example is executed in-process (imported as __main__-style module
run) with stdout captured; a failure in any example is a release
blocker, not a docs nit.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_the_promised_scripts():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3  # deliverable (b): at least three


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, capsys, monkeypatch):
    # Examples use only the installed package and stdlib; run them as
    # scripts so their __main__ guard fires.
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
    # No example should print a failure marker.
    assert "Traceback" not in out
    assert "UNEXPECTED" not in out
