"""Unit tests for repro.net.topology.Topology (the hash-consed layer).

The DirectedGraph-compatible surface is covered by test_net_graph.py
(which now runs against the shim); this file pins the *new* contract:
interning identity, the canonical sorted edge tuple, lazily cached
adjacency rows, degree views, the stable content hash, and pickling.
"""

import pickle

import pytest

from repro.net.graph import DirectedGraph
from repro.net.topology import Topology


class TestHashConsing:
    def test_equal_graphs_are_identical_objects(self):
        a = Topology(4, [(0, 1), (2, 3)])
        b = Topology(4, [(2, 3), (0, 1), (0, 1)])  # order/dups irrelevant
        assert a is b

    def test_shim_and_native_constructors_share_instances(self):
        assert DirectedGraph(3, [(0, 1)]) is Topology(3, [(0, 1)])

    def test_same_edges_different_n_are_distinct(self):
        assert Topology(3, [(0, 1)]) is not Topology(4, [(0, 1)])

    def test_complete_and_empty_are_cached(self):
        assert Topology.complete(5) is Topology.complete(5)
        assert Topology.empty(5) is Topology.empty(5)
        assert Topology.complete(5) is Topology(
            5, ((u, v) for u in range(5) for v in range(5) if u != v)
        )

    def test_derived_topologies_intern_too(self):
        g = Topology(3, [(0, 1), (1, 2), (2, 0)])
        assert g.without_sources([1]) is Topology(3, [(0, 1), (2, 0)])
        assert g.restrict_targets([1]) is Topology(3, [(0, 1)])
        assert g.union(Topology(3, [(1, 0)])) is Topology(
            3, [(0, 1), (1, 0), (1, 2), (2, 0)]
        )

    def test_pickle_round_trip_re_interns(self):
        g = Topology(4, [(0, 1), (1, 2)])
        clone = pickle.loads(pickle.dumps(g))
        assert clone is g

    def test_equality_survives_without_identity(self):
        # Structural equality must hold even for non-interned twins
        # (the bounded table can be cleared between constructions).
        g = Topology(3, [(0, 1)])
        twin = object.__new__(Topology)
        twin._n, twin._edges = 3, ((0, 1),)
        twin._edge_set = twin._out_rows = twin._in_rows = None
        twin._hash = twin._content_hash = None
        assert twin == g and hash(twin) == hash(g)


class TestCanonicalViews:
    def test_edge_list_is_sorted_tuple(self):
        g = Topology(4, [(3, 0), (0, 3), (1, 2), (0, 2)])
        assert g.edge_list == ((0, 2), (0, 3), (1, 2), (3, 0))

    def test_rows_match_neighbor_sets(self):
        g = Topology(4, [(0, 1), (2, 1), (1, 3), (0, 3)])
        assert g.in_row(1) == (0, 2)
        assert g.out_row(0) == (1, 3)
        assert g.in_row(0) == ()
        for v in range(4):
            assert frozenset(g.in_row(v)) == g.in_neighbors(v)
            assert frozenset(g.out_row(v)) == g.out_neighbors(v)

    def test_rows_are_cached_objects(self):
        g = Topology(3, [(0, 1), (1, 2)])
        assert g.out_rows() is g.out_rows()
        assert g.in_rows() is g.in_rows()

    def test_degree_views(self):
        g = Topology(3, [(0, 1), (2, 1), (1, 0)])
        assert g.in_degrees() == (1, 2, 0)
        assert g.out_degrees() == (1, 1, 1)
        assert g.in_degree(1) == 2 and g.out_degree(2) == 1

    def test_iteration_follows_canonical_order(self):
        g = Topology(3, [(2, 0), (0, 1)])
        assert list(g) == [(0, 1), (2, 0)]


class TestContentHash:
    def test_stable_across_construction_paths(self):
        a = Topology(4, [(0, 1), (2, 3)])
        b = Topology.from_sorted_edges(4, ((0, 1), (2, 3)))
        assert a.content_hash == b.content_hash

    def test_distinguishes_n_and_edges(self):
        assert Topology(3, [(0, 1)]).content_hash != Topology(4, [(0, 1)]).content_hash
        assert Topology(3, [(0, 1)]).content_hash != Topology(3, [(1, 0)]).content_hash

    def test_pinned_value(self):
        # The hash must be stable across runs and processes: pin one.
        g = Topology(3, [(0, 1), (1, 2)])
        assert g.content_hash == int.from_bytes(
            __import__("hashlib").blake2b(b"30,1;1,2;", digest_size=16).digest(),
            "big",
        )


class TestValidationStillStrict:
    def test_from_sorted_edges_requires_positive_n(self):
        with pytest.raises(ValueError, match="at least one node"):
            Topology.from_sorted_edges(0, ())

    def test_constructor_validates(self):
        with pytest.raises(ValueError, match="self-loop"):
            Topology(3, [(2, 2)])
        with pytest.raises(ValueError, match="out of range"):
            Topology(3, [(0, 5)])
