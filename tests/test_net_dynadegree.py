"""Unit tests for the (T, D)-dynaDegree checker (Definition 1).

Includes the paper's Figure 1 example as the canonical fixture: the
3-node alternating adversary satisfies (2, 1)- but not (1, 1)-dynaDegree.
"""

import pytest

from repro.net.dynadegree import (
    DynaDegreeChecker,
    DynaDegreeProfile,
    check_dynadegree,
    max_degree_for_window,
    min_window_for_degree,
)
from repro.net.dynamic import DynamicGraph, EdgeSchedule
from repro.net.graph import DirectedGraph

FIGURE1_EVEN = [(0, 1), (1, 0), (1, 2), (2, 1)]


def figure1_trace(rounds: int = 8) -> DynamicGraph:
    sched = EdgeSchedule.from_table(3, [FIGURE1_EVEN, []])
    return DynamicGraph.from_schedule(sched, rounds)


def complete_trace(n: int, rounds: int) -> DynamicGraph:
    dyn = DynamicGraph(n)
    for _ in range(rounds):
        dyn.record(DirectedGraph.complete(n))
    return dyn


class TestFigure1:
    """The paper's motivating example, verbatim."""

    def test_satisfies_2_1(self):
        verdict = check_dynadegree(figure1_trace(), window=2, degree=1)
        assert verdict.holds
        assert not verdict.vacuous

    def test_violates_1_1(self):
        verdict = check_dynadegree(figure1_trace(), window=1, degree=1)
        assert not verdict.holds
        # Odd rounds are empty: every node is a witness there.
        assert any(v.window_start == 1 for v in verdict.violations)

    def test_max_degree_profile(self):
        trace = figure1_trace()
        profile = DynaDegreeProfile.from_trace(trace, windows=[1, 2, 3])
        assert profile.max_degree_by_window[1] == 0  # empty odd rounds
        assert profile.max_degree_by_window[2] == 1  # nodes 0 and 2 hear only node 1
        assert profile.satisfies(2, 1)
        assert not profile.satisfies(2, 2)

    def test_profile_unknown_window_raises(self):
        profile = DynaDegreeProfile.from_trace(figure1_trace(), windows=[2])
        with pytest.raises(KeyError):
            profile.satisfies(5, 1)

    def test_min_window_for_degree(self):
        assert min_window_for_degree(figure1_trace(), degree=1) == 2
        assert min_window_for_degree(figure1_trace(), degree=2) is None


class TestCheckerBasics:
    def test_complete_graph_is_1_nminus1(self):
        trace = complete_trace(5, 4)
        assert check_dynadegree(trace, 1, 4).holds
        assert max_degree_for_window(trace, 1) == 4

    def test_parameter_validation(self):
        trace = complete_trace(4, 3)
        with pytest.raises(ValueError, match="T must be >= 1"):
            check_dynadegree(trace, 0, 1)
        with pytest.raises(ValueError, match=r"D must be in \[1, n-1\]"):
            check_dynadegree(trace, 1, 0)
        with pytest.raises(ValueError, match=r"D must be in \[1, n-1\]"):
            check_dynadegree(trace, 1, 4)

    def test_short_trace_is_vacuous(self):
        trace = complete_trace(4, 2)
        verdict = check_dynadegree(trace, window=5, degree=3)
        assert verdict.holds and verdict.vacuous
        assert verdict.complete_windows == 0

    def test_fault_free_restriction(self):
        # Node 2 hears nobody; excluding it from the fault-free set
        # rescues the property.
        dyn = DynamicGraph(3)
        for _ in range(3):
            dyn.record(DirectedGraph(3, [(0, 1), (1, 0)]))
        assert not check_dynadegree(dyn, 1, 1).holds
        assert check_dynadegree(dyn, 1, 1, fault_free=[0, 1]).holds

    def test_senders_filter_discounts_crashed(self):
        # Node 0 is node 1's only in-neighbor; once node 0 "crashes"
        # (excluded from senders after round 1), windows past the crash
        # fail.
        dyn = DynamicGraph(2)
        for _ in range(4):
            dyn.record(DirectedGraph(2, [(0, 1), (1, 0)]))
        alive_until_1 = lambda t: {0, 1} if t < 2 else {1}  # noqa: E731
        verdict = check_dynadegree(
            dyn, 1, 1, fault_free=[1], senders_at=alive_until_1
        )
        assert not verdict.holds
        assert verdict.violations[0].window_start == 2

    def test_violation_cap(self):
        dyn = DynamicGraph(3)
        for _ in range(40):
            dyn.record(DirectedGraph(3))  # all empty: violations everywhere
        verdict = check_dynadegree(dyn, 1, 1, max_violations=5)
        assert not verdict.holds
        assert len(verdict.violations) == 5

    def test_violation_str_is_informative(self):
        verdict = check_dynadegree(figure1_trace(), 1, 1)
        text = str(verdict.violations[0])
        assert "node" in text and "needs 1" in text


class TestWindowAggregation:
    def test_links_in_different_rounds_count_together(self):
        # Node 0 hears node 1 in round 0 and node 2 in round 1: degree 2
        # over the 2-round window though never 2 in a single round.
        dyn = DynamicGraph(3)
        dyn.record(DirectedGraph(3, [(1, 0), (0, 1), (0, 2)]))
        dyn.record(DirectedGraph(3, [(2, 0), (0, 1), (0, 2)]))
        assert check_dynadegree(dyn, 2, 2, fault_free=[0]).holds
        assert not check_dynadegree(dyn, 1, 2, fault_free=[0]).holds

    def test_repeated_neighbor_counts_once(self):
        # Hearing the same neighbor twice does not reach degree 2.
        dyn = DynamicGraph(3)
        dyn.record(DirectedGraph(3, [(1, 0)]))
        dyn.record(DirectedGraph(3, [(1, 0)]))
        assert not check_dynadegree(dyn, 2, 2, fault_free=[0]).holds
        assert check_dynadegree(dyn, 2, 1, fault_free=[0]).holds

    def test_monotone_in_window(self):
        trace = figure1_trace(10)
        degrees = [max_degree_for_window(trace, w) for w in range(1, 5)]
        assert degrees == sorted(degrees)


class TestIncrementalChecker:
    def test_matches_batch_checker_on_figure1(self):
        checker = DynaDegreeChecker(3, window=2, degree=1)
        trace = figure1_trace(9)
        for t in range(len(trace)):
            checker.observe(trace.at(t))
        assert checker.clean
        batch = check_dynadegree(trace, 2, 1)
        assert batch.holds

    def test_detects_violation_at_window_close(self):
        checker = DynaDegreeChecker(3, window=2, degree=1)
        checker.observe(DirectedGraph(3))
        assert checker.clean  # no window complete yet
        checker.observe(DirectedGraph(3))
        assert not checker.clean
        assert checker.violations[0].window_start == 0

    def test_retire_releases_constraint(self):
        checker = DynaDegreeChecker(2, window=1, degree=1)
        checker.retire(1)
        checker.observe(DirectedGraph(2, [(1, 0)]))  # node 1 hears nobody
        assert checker.clean

    def test_senders_filter(self):
        checker = DynaDegreeChecker(2, window=1, degree=1)
        checker.observe(DirectedGraph(2, [(0, 1), (1, 0)]), senders={1})
        # Node 1's only in-link came from the non-sender 0.
        assert not checker.clean

    def test_size_mismatch_rejected(self):
        checker = DynaDegreeChecker(3, window=1, degree=1)
        with pytest.raises(ValueError, match="expects 3"):
            checker.observe(DirectedGraph(4))

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="T must be >= 1"):
            DynaDegreeChecker(3, 0, 1)
        with pytest.raises(ValueError, match="D must be in"):
            DynaDegreeChecker(3, 1, 3)

    def test_rounds_observed(self):
        checker = DynaDegreeChecker(3, window=2, degree=1)
        assert checker.rounds_observed == 0
        checker.observe(DirectedGraph.complete(3))
        assert checker.rounds_observed == 1
