"""Unit tests for the parameter-sweep driver."""

import pytest

from repro.bench.sweep import Sweep, SweepRecord


def fake_runner(n, window, seed):
    """Deterministic pseudo-result for assertions."""
    return n * 100 + window * 10 + seed


class TestSweep:
    def test_cells_cartesian_product(self):
        sweep = Sweep(grid={"n": [5, 9], "window": [1, 3]})
        cells = sweep.cells()
        assert len(cells) == 4
        assert {"n": 5, "window": 3} in cells

    def test_run_covers_grid_times_repeats(self):
        sweep = Sweep(grid={"n": [5, 9], "window": [1, 3]}, repeats=3)
        records = sweep.run(fake_runner)
        assert len(records) == 12
        assert sweep.records == records

    def test_seeds_increment_per_trial(self):
        sweep = Sweep(grid={"n": [5], "window": [1]}, repeats=3, seed0=10)
        records = sweep.run(fake_runner)
        assert [r.seed for r in records] == [10, 11, 12]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one parameter"):
            Sweep(grid={})
        with pytest.raises(ValueError, match="repeats"):
            Sweep(grid={"n": [1]}, repeats=0)

    def test_record_param_lookup(self):
        record = SweepRecord((("n", 5), ("window", 3)), 0, 42)
        assert record.param("n") == 5
        with pytest.raises(KeyError):
            record.param("zap")

    def test_param_error_names_record_and_available_keys(self):
        record = SweepRecord((("n", 5), ("window", 3)), seed=7, result=42)
        with pytest.raises(KeyError, match=r"'n', 'window'") as excinfo:
            record.param("zap")
        message = str(excinfo.value)
        assert "seed=7" in message and "'zap'" in message

    def test_run_with_workers_matches_serial(self):
        grid = {"n": [5, 9], "window": [1, 3]}
        serial = Sweep(grid=grid, repeats=2)
        parallel = Sweep(grid=grid, repeats=2)
        serial.run(fake_runner, workers=1)
        parallel.run(fake_runner, workers=2)
        assert serial.records == parallel.records


class TestAggregation:
    def make_sweep(self):
        sweep = Sweep(grid={"n": [5, 9], "window": [1, 3]}, repeats=2)
        sweep.run(fake_runner)
        return sweep

    def test_group_by_single_param(self):
        groups = self.make_sweep().group_by("n")
        assert set(groups) == {(5,), (9,)}
        assert all(len(records) == 4 for records in groups.values())

    def test_group_by_two_params(self):
        groups = self.make_sweep().group_by("n", "window")
        assert len(groups) == 4
        assert all(len(records) == 2 for records in groups.values())

    def test_summarize_by(self):
        stats = self.make_sweep().summarize_by("n", "window")
        # n=5, window=1, seeds 0 and 1 -> results 510 and 511.
        assert stats[(5, 1)].mean == pytest.approx(510.5)
        assert stats[(5, 1)].count == 2

    def test_to_table(self):
        table = self.make_sweep().to_table("n", "window", title="demo")
        assert table.headers[:2] == ["n", "window"]
        assert len(table.rows) == 4
        assert table.passed

    def test_heterogeneous_records_grouping_raises_clearly(self):
        # Regression: two run() calls over differing grids used to make
        # group_by/summarize_by die with an opaque KeyError deep inside
        # record.param; the guard now names the offending parameter and
        # explains the heterogeneity.
        sweep = Sweep(grid={"n": [5]}, repeats=1)
        sweep.run(lambda n, seed: n)
        sweep.grid = {"window": [1, 2]}
        sweep.run(lambda window, seed: window)
        with pytest.raises(ValueError, match="heterogeneous") as excinfo:
            sweep.group_by("n")
        assert "'n'" in str(excinfo.value)
        with pytest.raises(ValueError, match="heterogeneous"):
            sweep.summarize_by("window")

    def test_heterogeneous_records_group_by_common_param(self):
        # Grouping by a parameter present in every record still works.
        sweep = Sweep(grid={"n": [5], "window": [1]}, repeats=1)
        sweep.run(fake_runner)
        sweep.grid = {"n": [9], "window": [2]}
        sweep.run(fake_runner)
        groups = sweep.group_by("n")
        assert set(groups) == {(5,), (9,)}

    def test_custom_value_projection(self):
        sweep = Sweep(grid={"n": [5]}, repeats=2)
        sweep.run(lambda n, seed: {"rounds": seed + 1})
        stats = sweep.summarize_by("n", value=lambda r: float(r.result["rounds"]))
        assert stats[(5,)].mean == pytest.approx(1.5)


class TestRealWorkloadIntegration:
    def test_sweep_over_dac_executions(self):
        from repro.sim.runner import run_consensus
        from repro.workloads import build_dac_execution

        sweep = Sweep(grid={"window": [1, 2]}, repeats=2)
        sweep.run(
            lambda window, seed: run_consensus(
                **build_dac_execution(n=5, f=2, epsilon=1e-2, seed=seed, window=window)
            ).rounds
        )
        stats = sweep.summarize_by("window")
        # Rounds scale with the window under the last-minute adversary.
        assert stats[(2,)].mean > stats[(1,)].mean
