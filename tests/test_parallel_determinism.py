"""Determinism guarantees of the parallel execution subsystem.

Two contracts make ``workers=N`` a pure speed knob:

1. ``Sweep.run(workers=N)`` produces *identical* records -- same
   results, same order -- as ``workers=1`` (and as the in-process
   serial path), because seeds are scheduled before dispatch and
   results are collected in spec order;
2. the engine's fast path (``record_trace=False``, no observers)
   produces bit-identical final states and outputs to a fully traced
   execution -- snapshotting is observation, never behavior.
"""

import pytest

from repro.adversary.base import StaticAdversary
from repro.bench.sweep import Sweep
from repro.core.dac import DACProcess
from repro.net.ports import identity_ports
from repro.sim.engine import Engine
from repro.sim.parallel import (
    TrialSpec,
    resolve_workers,
    run_trials,
    set_default_workers,
)
from repro.sim.rng import spawn_inputs
from repro.sim.runner import run_consensus
from repro.workloads import build_dac_execution, run_dac_trial
from tests.helpers import (
    assert_equivalent_runs,
    serial_executor,
    workers_executor,
)


def echo_trial(seed, **params):
    """Picklable trial that exposes exactly what it was called with."""
    return {"seed": seed, **params}


def buggy_trial(seed, **params):
    """Picklable trial whose body raises (a user bug, not a pickling one)."""
    return seed.does_not_exist  # AttributeError from inside the worker


class TestRunTrials:
    def make_specs(self, count):
        return [TrialSpec((("i", i),), seed=100 + i) for i in range(count)]

    def test_serial_and_parallel_results_identical(self):
        specs = self.make_specs(9)
        serial = run_trials(echo_trial, specs, workers=1)
        parallel = run_trials(echo_trial, specs, workers=3)
        assert serial == parallel
        assert [r["seed"] for r in serial] == [100 + i for i in range(9)]

    def test_order_is_spec_order_not_completion_order(self):
        specs = self.make_specs(12)
        results = run_trials(echo_trial, specs, workers=4)
        assert [r["i"] for r in results] == list(range(12))

    def test_serial_path_allows_lambdas(self):
        specs = self.make_specs(3)
        results = run_trials(lambda i, seed: i * 10 + seed % 10, specs, workers=1)
        assert results == [0 * 10 + 0, 1 * 10 + 1, 2 * 10 + 2]

    def test_parallel_rejects_unpicklable_fn_with_hint(self):
        specs = self.make_specs(4)
        with pytest.raises(ValueError, match="module-level function"):
            run_trials(lambda i, seed: i, specs, workers=2)

    def test_unpicklable_later_spec_gets_the_friendly_error(self):
        # The shippability probe must cover every spec, not just the
        # first -- an unpicklable parameter can hide in any grid cell.
        specs = [
            TrialSpec((("i", 0),), seed=0),
            TrialSpec((("i", lambda: None),), seed=1),
        ]
        with pytest.raises(ValueError, match="picklable"):
            run_trials(echo_trial, specs, workers=2)

    def test_worker_side_errors_propagate_untouched(self):
        # Regression: an AttributeError raised *by* the trial function
        # must not be mislabelled as a picklability problem.
        specs = self.make_specs(4)
        with pytest.raises(AttributeError, match="does_not_exist"):
            run_trials(buggy_trial, specs, workers=2)

    def test_single_spec_runs_serially_even_with_workers(self):
        # One spec never pays pool startup -- lambdas stay legal.
        specs = self.make_specs(1)
        assert run_trials(lambda i, seed: i + seed, specs, workers=4) == [100]


class TestWorkerResolution:
    def test_explicit_counts_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_zero_means_cpu_count(self):
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(-1)
        with pytest.raises(ValueError, match="workers"):
            set_default_workers(-2)

    def test_none_uses_process_default(self):
        set_default_workers(3)
        try:
            assert resolve_workers(None) == 3
        finally:
            set_default_workers(1)
        assert resolve_workers(None) == 1


class TestSweepParallelIdentity:
    def test_workers_4_records_identical_to_workers_1(self):
        grid = {"n": [5, 7], "window": [1, 2]}
        serial = Sweep(grid=grid, repeats=2)
        parallel = Sweep(grid=grid, repeats=2)
        serial.run(run_dac_trial, workers=1)
        parallel.run(run_dac_trial, workers=4)
        # Identical records: same params, same seeds, same results,
        # same order -- element-for-element equality of the dataclasses.
        assert serial.records == parallel.records
        assert [r.seed for r in serial.records] == [r.seed for r in parallel.records]
        assert all(r.result["terminated"] for r in parallel.records)

    def test_parallel_aggregation_matches_serial(self):
        grid = {"n": [5, 9]}
        serial = Sweep(grid=grid, repeats=3)
        parallel = Sweep(grid=grid, repeats=3)
        serial.run(run_dac_trial, workers=1)
        parallel.run(run_dac_trial, workers=2)
        value = lambda r: float(r.result["rounds"])  # noqa: E731
        assert serial.summarize_by("n", value=value) == parallel.summarize_by(
            "n", value=value
        )


def make_engine(n, record_trace):
    ports = identity_ports(n)
    inputs = spawn_inputs(11, n)
    processes = {
        v: DACProcess(n, 0, inputs[v], v, epsilon=1e-9) for v in range(n)
    }
    return Engine(processes, StaticAdversary(), ports, record_trace=record_trace)


class TestFastPathIdentity:
    def test_engine_fast_path_matches_traced_states(self):
        traced = make_engine(7, record_trace=True)
        fast = make_engine(7, record_trace=False)
        traced.run(25)
        fast.run(25)
        assert fast.trace is None and traced.trace is not None
        assert fast.fault_free_values() == traced.fault_free_values()
        assert fast.metrics.delivered == traced.metrics.delivered
        assert fast.metrics.bits == traced.metrics.bits

    def test_sweep_legacy_traced_and_workers_full_state_identity(self):
        # The shared harness replaces this file's old per-scenario
        # loops: port-major sweep (reference) == legacy untraced loop
        # == fully traced execution == a workers=4 pool, by full
        # state_key equality across crash/window/selector grids.
        assert_equivalent_runs(
            [
                {"family": "dac", "n": 9, "f": 4, "seeds": (5, 6)},
                {"family": "dac", "n": 9, "f": 4, "window": 2, "seeds": (5,)},
                {"family": "dac", "n": 7, "selector": "nearest", "seeds": (3,)},
            ],
            {
                "serial-fast": serial_executor(),
                "serial-legacy": serial_executor(sweep=False),
                "traced": serial_executor(traced=True),
                "workers-4": workers_executor(4),
            },
        )

    def test_run_consensus_fast_matches_traced_outputs(self):
        # Two builds of the same scenario (processes are stateful), one
        # run fully observed, one on the engine fast path.
        kwargs = dict(n=9, f=4, epsilon=1e-3, seed=5, window=2)
        traced = run_consensus(
            **build_dac_execution(**kwargs),
            record_trace=True,
            track_phases=True,
        )
        fast = run_consensus(
            **build_dac_execution(**kwargs),
            record_trace=False,
            verify_promise=False,
            track_phases=False,
        )
        assert fast.rounds == traced.rounds
        assert fast.terminated == traced.terminated
        assert fast.outputs == traced.outputs
        assert fast.output_spread == traced.output_spread
        assert fast.correct == traced.correct
        # The fast report simply carries no phase bookkeeping.
        assert fast.phase_ranges == [] and traced.phase_ranges

    def test_trial_fast_flag_changes_nothing_observable(self):
        # The whole summary must match key for key -- the fast flag may
        # only change how the result was computed, never what it says.
        fast = run_dac_trial(n=7, seed=3, fast=True)
        slow = run_dac_trial(n=7, seed=3, fast=False)
        assert fast == slow

    def test_run_result_survives_pickle(self):
        # Trial results containing a RunResult must ship between the
        # parallel layer's worker processes.
        import copy
        import pickle

        from repro.sim.engine import RunResult

        original = RunResult(7, True)
        for clone in (pickle.loads(pickle.dumps(original)), copy.deepcopy(original)):
            assert clone == 7
            assert clone.stopped is True
        unstopped = pickle.loads(pickle.dumps(RunResult(0, False)))
        assert unstopped == 0 and not unstopped.stopped
