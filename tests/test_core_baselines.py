"""Unit tests for the baseline algorithms."""

import pytest

from repro.adversary.base import StaticAdversary
from repro.core.baselines import (
    FloodMinProcess,
    IteratedMidpointProcess,
    MajorityVoteProcess,
    TrimmedMeanProcess,
)
from repro.net.ports import identity_ports
from repro.sim.engine import Engine
from repro.sim.messages import StateMessage
from repro.sim.node import Delivery

from tests.helpers import spread_inputs


def run_on_complete(factory, n, inputs, rounds):
    ports = identity_ports(n)
    procs = {v: factory(v, inputs[v], ports.self_port(v)) for v in range(n)}
    engine = Engine(procs, StaticAdversary(), ports)
    engine.run(rounds)
    return procs


class TestIteratedMidpoint:
    def test_halves_range_per_round_on_complete_graph(self):
        n = 5
        inputs = spread_inputs(n)
        procs = run_on_complete(
            lambda v, x, p: IteratedMidpointProcess(n, 0, x, p, num_rounds=4),
            n,
            inputs,
            rounds=3,
        )
        values = [procs[v].value for v in range(n)]
        spread = max(values) - min(values)
        assert spread <= 1.0 * 0.5**3 + 1e-12

    def test_outputs_after_budget(self):
        n = 4
        procs = run_on_complete(
            lambda v, x, p: IteratedMidpointProcess(n, 0, x, p, num_rounds=2),
            n,
            spread_inputs(n),
            rounds=2,
        )
        assert all(procs[v].has_output() for v in range(n))

    def test_zero_rounds_outputs_input(self):
        p = IteratedMidpointProcess(3, 0, 0.7, 0, num_rounds=0)
        assert p.has_output() and p.output() == 0.7

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            IteratedMidpointProcess(3, 0, 0.0, 0, num_rounds=-1)

    def test_empty_round_keeps_value(self):
        p = IteratedMidpointProcess(3, 0, 0.7, 0, num_rounds=5)
        p.deliver([])
        assert p.value == 0.7
        assert p.phase == 1


class TestTrimmedMean:
    def test_clips_f_extremes_per_side(self):
        p = TrimmedMeanProcess(5, 1, 0.5, 0, num_rounds=3)
        batch = [
            Delivery(0, StateMessage(0.5, 0)),
            Delivery(1, StateMessage(-100.0, 0)),
            Delivery(2, StateMessage(0.4, 0)),
            Delivery(3, StateMessage(0.6, 0)),
            Delivery(4, StateMessage(100.0, 0)),
        ]
        p.deliver(batch)
        # Trimmed: [0.4, 0.5, 0.6] -> midpoint 0.5.
        assert p.value == pytest.approx(0.5)

    def test_too_few_values_keeps_state(self):
        p = TrimmedMeanProcess(5, 2, 0.5, 0, num_rounds=3)
        p.deliver([Delivery(1, StateMessage(9.0, 0))])  # 1 <= 2f: no update
        assert p.value == 0.5

    def test_converges_on_complete_graph(self):
        n = 7
        procs = run_on_complete(
            lambda v, x, p: TrimmedMeanProcess(n, 1, x, p, num_rounds=6),
            n,
            spread_inputs(n),
            rounds=6,
        )
        outs = [procs[v].output() for v in range(n)]
        assert max(outs) - min(outs) < 0.05


class TestFloodMin:
    def test_agrees_on_min_with_reliable_links(self):
        n = 5
        inputs = [0.3, 0.9, 0.1, 0.7, 0.5]
        procs = run_on_complete(
            lambda v, x, p: FloodMinProcess(n, 0, x, p),
            n,
            inputs,
            rounds=n - 1,
        )
        assert {procs[v].output() for v in range(n)} == {0.1}

    def test_default_budget_is_n_minus_1(self):
        assert FloodMinProcess(7, 0, 0.0, 0).num_rounds == 6

    def test_min_is_monotone(self):
        p = FloodMinProcess(4, 0, 0.5, 0, num_rounds=5)
        p.deliver([Delivery(1, StateMessage(0.9, 0))])
        assert p.value == 0.5
        p.deliver([Delivery(2, StateMessage(0.2, 0))])
        assert p.value == 0.2


class TestMajorityVote:
    def test_majority_of_observed(self):
        n = 5
        inputs = [1.0, 1.0, 1.0, 0.0, 0.0]
        procs = run_on_complete(
            lambda v, x, p: MajorityVoteProcess(n, 0, x, p),
            n,
            inputs,
            rounds=n - 1,
        )
        assert {procs[v].output() for v in range(n)} == {1.0}

    def test_tie_breaks_to_zero(self):
        n = 4
        inputs = [1.0, 1.0, 0.0, 0.0]
        procs = run_on_complete(
            lambda v, x, p: MajorityVoteProcess(n, 0, x, p),
            n,
            inputs,
            rounds=n - 1,
        )
        assert {procs[v].output() for v in range(n)} == {0.0}

    def test_tracks_latest_value_per_port(self):
        p = MajorityVoteProcess(3, 0, 0.0, 0, num_rounds=4)
        p.deliver([Delivery(1, StateMessage(1.0, 0)), Delivery(2, StateMessage(1.0, 0))])
        assert p.value == 1.0  # two 1s vs one 0


class TestStateKeys:
    def test_all_baselines_have_hashable_keys(self):
        for proc in (
            IteratedMidpointProcess(3, 0, 0.0, 0),
            TrimmedMeanProcess(4, 1, 0.0, 0),
            FloodMinProcess(3, 0, 0.0, 0),
            MajorityVoteProcess(3, 0, 0.0, 0),
        ):
            hash(proc.state_key())
