"""Unit tests for the Section VII piggyback extension."""

import pytest

from repro.adversary.base import StaticAdversary
from repro.core.dac import DACProcess
from repro.core.piggyback import PiggybackDACProcess
from repro.net.ports import identity_ports
from repro.sim.engine import Engine
from repro.sim.messages import StateMessage
from repro.sim.node import Delivery

from tests.helpers import spread_inputs


def pb(n=5, f=0, x=0.5, port=0, k=2, eps=0.25, **kwargs):
    return PiggybackDACProcess(n, f, x, port, epsilon=eps, k=k, **kwargs)


class TestBroadcast:
    def test_initially_no_history(self):
        out = pb().broadcast()
        assert out.history == ()

    def test_relays_received_states(self):
        p = pb(x=0.0, k=2)
        p.deliver([Delivery(1, StateMessage(0.9, 0))])
        out = p.broadcast()
        assert (0.9, 0) in out.history

    def test_history_capped_at_k(self):
        p = pb(n=9, x=0.0, k=2)
        for port, value in enumerate([0.1, 0.2, 0.3, 0.35], start=1):
            p.deliver([Delivery(port, StateMessage(value, 0))])
        assert len(p.broadcast().history) <= 2

    def test_own_message_not_relayed(self):
        p = pb(x=0.3, port=0)
        p.deliver([Delivery(0, StateMessage(0.3, 0))])
        assert p.broadcast().history == ()

    def test_k_zero_is_plain_dac_messages(self):
        p = pb(k=0)
        p.deliver([Delivery(1, StateMessage(0.9, 0))])
        assert p.broadcast().history == ()

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError, match="k must be non-negative"):
            pb(k=-1)


class TestRelayAbsorption:
    def test_relayed_future_phase_triggers_jump(self):
        p = pb(n=5, x=0.0, k=2, eps=0.25)
        relayed = StateMessage(0.5, 0, history=((0.8, 1),))
        p.deliver([Delivery(1, relayed)])
        assert p.phase == 1
        assert p.value == 0.8

    def test_relayed_current_phase_widens_extremes(self):
        # Port budget untouched, but the midpoint update sees the
        # relayed extreme.
        p = pb(n=5, x=0.0, k=2, eps=0.25)
        batch = [
            Delivery(1, StateMessage(0.2, 0, history=((0.9, 0),))),
            Delivery(2, StateMessage(0.3, 0)),
        ]
        p.deliver(batch)  # quorum 3 reached: self + ports 1, 2
        # Extremes: min 0.0 (self), max 0.9 (relayed) -> 0.45.
        assert p.value == pytest.approx(0.45)

    def test_relayed_entry_does_not_count_toward_quorum(self):
        p = pb(n=5, x=0.0, k=2)
        # One port carrying two relayed entries: still only 2 of 3 quorum.
        p.deliver([Delivery(1, StateMessage(0.2, 0, history=((0.4, 0), (0.6, 0))))])
        assert p.phase == 0
        assert p.received_count == 2

    def test_jump_disabled_also_disables_relay_jumps(self):
        p = pb(n=5, x=0.0, k=2, enable_jump=False)
        p.deliver([Delivery(1, StateMessage(0.5, 0, history=((0.8, 3),)))])
        assert p.phase == 0


class TestEquivalenceWithDAC:
    def test_k0_behaves_exactly_like_dac(self):
        n = 7
        ports = identity_ports(n)
        inputs = spread_inputs(n)

        def run(factory):
            procs = {v: factory(v) for v in range(n)}
            engine = Engine(procs, StaticAdversary(), ports)
            engine.run(12)
            return [(procs[v].value, procs[v].phase) for v in range(n)]

        dac_states = run(
            lambda v: DACProcess(n, 0, inputs[v], v, epsilon=1e-2)
        )
        pb_states = run(
            lambda v: PiggybackDACProcess(n, 0, inputs[v], v, epsilon=1e-2, k=0)
        )
        assert dac_states == pb_states

    def test_state_key_includes_relay_buffer(self):
        a, b = pb(x=0.0), pb(x=0.0)
        assert a.state_key() == b.state_key()
        a.deliver([Delivery(1, StateMessage(0.9, 0))])
        b.deliver([Delivery(1, StateMessage(0.9, 0))])
        assert a.state_key() == b.state_key()
