#!/usr/bin/env python3
"""Quickstart: approximate consensus in an anonymous dynamic network.

Runs DAC (the paper's crash-tolerant algorithm) on a 9-node network at
its exact feasibility boundary -- f = 4 crash faults (n = 2f + 1) and a
worst-case message adversary that delivers the bare minimum the
(T, floor(n/2))-dynaDegree stability property allows.

Run:  python examples/quickstart.py
"""

from repro import build_dac_execution, run_consensus


def main() -> None:
    execution = build_dac_execution(
        n=9,  # network size (nodes know n, not who is who)
        f=4,  # up to f nodes may crash: n = 2f+1 is the minimum
        epsilon=1e-3,  # how close the outputs must land
        window=3,  # the adversary delivers once per 3-round window
        seed=42,
    )
    report = run_consensus(**execution)

    print("DAC at the feasibility boundary (n=9, f=4, T=3, D=4)")
    print("-" * 56)
    print(f"terminated        : {report.terminated} (after {report.rounds} rounds)")
    print(f"validity          : {report.validity}")
    print(f"eps-agreement     : {report.epsilon_agreement} (spread {report.output_spread:.2e})")
    print(f"adversary promise : (T, D) = {report.dynadegree_promise}, "
          f"verified on trace: {report.dynadegree_verified}")
    print()
    print("inputs  :", {k: round(v, 3) for k, v in sorted(report.inputs.items())})
    print("outputs :", {k: round(v, 3) for k, v in sorted(report.outputs.items())})
    print()
    print("per-phase range of states (halves every phase, Remark 1):")
    for phase, spread in enumerate(report.phase_ranges):
        if spread is None:  # empty phase in an aligned series
            print(f"  phase {phase:2d}  range     (no recorded states)")
            continue
        bar = "#" * max(1, int(spread * 48)) if spread > 0 else ""
        print(f"  phase {phase:2d}  range {spread:8.5f}  {bar}")

    assert report.correct, "the paper's Theorem 3 guarantees this run"


if __name__ == "__main__":
    main()
