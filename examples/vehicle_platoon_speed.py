#!/usr/bin/env python3
"""Connected-vehicle platoon speed agreement with a compromised car.

A platoon of 11 vehicles negotiates a common cruising speed over
vehicle-to-vehicle radio. Two cars run compromised firmware (Byzantine)
and -- because the network is anonymous (MAC randomization, no PKI) --
can tell every neighbor a different story without being caught.

This is DBAC territory: n = 11 = 5f + 1 tolerates f = 2 Byzantine
vehicles provided the dynamic radio graph supplies
(T, floor((n+3f)/2)) = (T, 8)-dynaDegree. The example runs three attack
strategies against the same platoon and shows none of them can drag
the agreed speed outside the honest vehicles' proposals.

Run:  python examples/vehicle_platoon_speed.py
"""

from repro import (
    DBACProcess,
    ExtremeByzantine,
    FaultPlan,
    FixedValueByzantine,
    PhaseLiarByzantine,
    RotatingQuorumAdversary,
    run_consensus,
)
from repro.net.ports import random_ports
from repro.sim.rng import child_rng
from repro.workloads import dbac_degree

N_CARS = 11
MAX_COMPROMISED = 2  # n = 5f + 1
EPSILON_KMH = 0.5

# Honest speed proposals (km/h) -- the lead cars want to go faster.
PROPOSED_SPEED = [92.0, 95.5, 88.0, 97.0, 90.5, 94.0, 89.5, 96.0, 91.0]

ATTACKS = {
    "pin at 140 km/h": lambda: FixedValueByzantine(140.0),
    "equivocate 60/140": lambda: ExtremeByzantine(low=60.0, high=140.0),
    "lie about phase": lambda: PhaseLiarByzantine(value=140.0, phase_lead=100),
}


def drive(attack_name: str, seed: int = 7):
    ports = random_ports(N_CARS, child_rng(seed, "ports"))
    # Cars 9 and 10 are compromised.
    plan = FaultPlan(
        N_CARS,
        byzantine={9: ATTACKS[attack_name](), 10: ATTACKS[attack_name]()},
    )
    lo, hi = min(PROPOSED_SPEED), max(PROPOSED_SPEED)
    processes = {
        v: DBACProcess(
            N_CARS,
            MAX_COMPROMISED,
            PROPOSED_SPEED[v],
            ports.self_port(v),
            epsilon=EPSILON_KMH,
            initial_range=hi - lo,
            end_phase=8,  # Eq. 6's bound is astronomically loose; see DESIGN.md
        )
        for v in plan.non_byzantine
    }
    adversary = RotatingQuorumAdversary(
        dbac_degree(N_CARS, MAX_COMPROMISED), selector="nearest"
    )
    return run_consensus(
        processes,
        adversary,
        ports,
        epsilon=EPSILON_KMH,
        f=MAX_COMPROMISED,
        fault_plan=plan,
        stop_mode="output",
        max_rounds=500,
        seed=seed,
    )


def main() -> None:
    lo, hi = min(PROPOSED_SPEED), max(PROPOSED_SPEED)
    print(f"Platoon of {N_CARS} cars, 2 compromised; honest proposals "
          f"span [{lo}, {hi}] km/h.")
    print(f"Radio: churning minimal (1, {dbac_degree(N_CARS, MAX_COMPROMISED)})-"
          "dynaDegree graph, adversarially selected neighbors.")
    print()
    for attack in ATTACKS:
        report = drive(attack)
        speeds = sorted(round(v, 2) for v in report.outputs.values())
        agreed = sum(speeds) / len(speeds)
        contained = all(lo - 1e-9 <= s <= hi + 1e-9 for s in speeds)
        print(f"attack: {attack:<22}  agreed ~{agreed:6.2f} km/h  "
              f"spread {report.output_spread:.3f}  "
              f"inside honest range: {contained}  rounds: {report.rounds}")
        assert report.terminated and report.epsilon_agreement and contained
    print()
    print("All attacks neutralized: the f+1-trimmed update (Algorithm 2)")
    print("guarantees the platoon's speed is always bracketed by honest")
    print("proposals, and anonymity-proof equivocation buys the attacker")
    print("nothing beyond what Theorem 7 already prices in.")


if __name__ == "__main__":
    main()
