#!/usr/bin/env python3
"""Batched sweeps: the three composition layers in one script.

The reproduction has three independent speed knobs for trial grids
(see docs/scaling.md):

1. the engine **fast path** -- untraced, unobserved rounds skip all
   snapshotting (every trial below uses it);
2. the **batch engine** -- ``repro.sim.batch`` advances B independent
   executions in lock-step, vectorized with numpy when available;
3. the **process pool** -- ``repro.sim.parallel`` fans trials (or
   whole batches) out over worker processes.

All three are *pure speed knobs*: this script runs the same DAC grid
serially, batched, and batched-over-workers, and checks the records
are identical element for element before reporting throughput.

Run:  python examples/batched_sweep.py
"""

import time

from repro.bench.sweep import Sweep
from repro.sim.batch import numpy_available
from repro.workloads import run_dac_trial

GRID = {"n": [9, 13], "window": [1, 2]}
REPEATS = 8


def timed_sweep(**run_kwargs):
    sweep = Sweep(grid=GRID, repeats=REPEATS)
    start = time.perf_counter()
    sweep.run(run_dac_trial, **run_kwargs)
    return sweep, time.perf_counter() - start


def main() -> None:
    backend = "numpy (vectorized)" if numpy_available() else "pure-python fallback"
    print(f"Boundary DAC sweep, three ways (batch backend: {backend})")
    print("-" * 60)

    serial, serial_s = timed_sweep(workers=1, batch=1)
    batched, batched_s = timed_sweep(workers=1, batch=REPEATS)
    fanned, fanned_s = timed_sweep(workers=2, batch=REPEATS // 2)

    trials = len(serial.records)
    print(f"serial             : {trials} trials in {serial_s:.3f}s "
          f"({trials / serial_s:.0f}/s)")
    print(f"batch={REPEATS}            : {trials} trials in {batched_s:.3f}s "
          f"({trials / batched_s:.0f}/s)")
    print(f"workers=2, batch={REPEATS // 2} : {trials} trials in {fanned_s:.3f}s "
          f"({trials / fanned_s:.0f}/s)")
    print()

    identical = serial.records == batched.records == fanned.records
    print(f"records identical across all three runs: {identical}")
    assert identical, "batching/workers must never change results"

    all_correct = all(record.result["correct"] for record in serial.records)
    print(f"all {trials} trials correct (termination+validity+agreement): "
          f"{all_correct}")

    print()
    print("mean rounds to output by (n, window):")
    stats_by_cell = serial.summarize_by(
        "n", "window", value=lambda record: float(record.result["rounds"])
    )
    for (n, window), stats in sorted(stats_by_cell.items()):
        print(f"  n={n:2d} T={window}: {stats.mean:5.1f} rounds")


if __name__ == "__main__":
    main()
