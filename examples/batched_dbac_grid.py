#!/usr/bin/env python3
"""A DBAC-vs-baseline comparative grid through the batched executors.

The paper's headline algorithm is DBAC: Byzantine-tolerant approximate
consensus in anonymous dynamic networks. This example runs the
comparison its evaluation is built around -- DBAC under the enforcing
``nearest``-value adversary with equivocating Byzantine nodes, against
the classical averaging baselines (iterated midpoint, trimmed mean)
under the same enforcing adversary family -- as one sweep per family,
fanned out over worker processes in lock-step batches
(``Sweep.run(workers=N, batch=B)``).

Since PR 4 the DBAC lanes run through the vectorized
``repro.sim.batch.ByzBatchEngine`` kernel (witness counters, trimmed
updates and the value-dependent ``nearest`` selection, all in numpy
when available); the baselines batch as grouped dispatch. Both are
*pure speed knobs*: the script re-runs every grid serially and asserts
the records agree element for element before reporting anything.

Run:  python examples/batched_dbac_grid.py
"""

import time

from repro.bench.sweep import Sweep
from repro.sim.batch import numpy_available
from repro.workloads import run_baseline_trial, run_dbac_trial

SIZES = [6, 11]
REPEATS = 8
EPSILON = 1e-3


def run_grid(trial, grid, **run_kwargs):
    sweep = Sweep(grid=grid, repeats=REPEATS)
    start = time.perf_counter()
    sweep.run(trial, **run_kwargs)
    return sweep, time.perf_counter() - start


def main() -> None:
    backend = "numpy (vectorized)" if numpy_available() else "pure-python fallback"
    print(f"DBAC vs averaging baselines, batched (batch backend: {backend})")
    print("-" * 68)

    dbac_grid = {"n": SIZES, "strategy": ["extreme"], "epsilon": [EPSILON]}
    baseline_grid = {"n": SIZES, "algorithm": ["midpoint", "trimmed"],
                     "epsilon": [EPSILON]}

    # Serial references first, then the batched-over-workers runs; the
    # whole point of the executors is that the records must agree.
    dbac_serial, dbac_serial_s = run_grid(run_dbac_trial, dbac_grid,
                                          workers=1, batch=1)
    dbac_fast, dbac_fast_s = run_grid(run_dbac_trial, dbac_grid,
                                      workers=2, batch=REPEATS // 2)
    base_serial, base_serial_s = run_grid(run_baseline_trial, baseline_grid,
                                          workers=1, batch=1)
    base_fast, base_fast_s = run_grid(run_baseline_trial, baseline_grid,
                                      workers=2, batch=REPEATS // 2)

    assert dbac_serial.records == dbac_fast.records, \
        "batched DBAC records diverged from serial"
    assert base_serial.records == base_fast.records, \
        "batched baseline records diverged from serial"
    trials = len(dbac_serial.records) + len(base_serial.records)
    print(f"serial/batched agreement: OK ({trials} trials, both families)")
    print(f"  DBAC     : {dbac_serial_s:.3f}s serial -> {dbac_fast_s:.3f}s "
          f"(workers=2, batch={REPEATS // 2})")
    print(f"  baselines: {base_serial_s:.3f}s serial -> {base_fast_s:.3f}s")
    print()

    print("rounds until the honest spread dips to epsilon (DBAC, oracle mode)")
    print("vs rounds the baselines spend to finish their fixed schedule:")
    print()
    print(f"{'n':>3}  {'algorithm':<10} {'mean rounds':>11}  {'all correct':>11}")
    dbac_stats = dbac_serial.summarize_by(
        "n", value=lambda record: float(record.result["rounds"])
    )
    for (n,), stats in sorted(dbac_stats.items()):
        correct = all(
            record.result["correct"]
            for record in dbac_serial.records
            if record.param("n") == n
        )
        print(f"{n:>3}  {'dbac':<10} {stats.mean:>11.1f}  {str(correct):>11}")
    base_stats = base_serial.summarize_by(
        "n", "algorithm", value=lambda record: float(record.result["rounds"])
    )
    for (n, algorithm), stats in sorted(base_stats.items()):
        correct = all(
            record.result["correct"]
            for record in base_serial.records
            if record.param("n") == n and record.param("algorithm") == algorithm
        )
        print(f"{n:>3}  {algorithm:<10} {stats.mean:>11.1f}  {str(correct):>11}")

    print()
    print("DBAC pays rounds to survive equivocating Byzantine senders under")
    print("a worst-case nearest-value adversary; the reliable-channel")
    print("baselines run fault-free -- the comparison the paper's")
    print("sufficiency results are about (see docs/batching.md).")


if __name__ == "__main__":
    main()
