#!/usr/bin/env python3
"""Drone swarm altitude agreement under flaky radio links.

The paper's motivating application: a fixed team of drones must agree
on a common cruise altitude. Radio connectivity is dynamic (mobility,
interference), there is no identity infrastructure (anonymous MAC
layer), and drones can drop out mid-mission (crash faults).

This example models the radio as the Section VII probabilistic message
adversary -- every directed link works with probability p each round --
and crashes two drones mid-run. It then repeats the mission across a
range of link qualities to show how convergence time degrades
gracefully as the network gets flakier.

Run:  python examples/drone_swarm_altitude.py
"""

from repro import (
    CrashEvent,
    DACProcess,
    FaultPlan,
    RandomLinkAdversary,
    run_consensus,
)
from repro.analysis.statistics import summarize
from repro.net.ports import random_ports
from repro.sim.rng import child_rng


N_DRONES = 9
MAX_CRASHES = 4  # n = 2f + 1
EPSILON_METERS = 0.5  # agree to within half a meter

# Each drone's preferred altitude (meters) from its local sensing.
PREFERRED_ALTITUDE = [112.0, 108.5, 119.0, 103.2, 115.7, 110.1, 117.3, 105.9, 114.4]


def fly_mission(link_quality: float, seed: int) -> tuple[bool, int, float]:
    """One mission: returns (success, rounds, agreed altitude spread)."""
    ports = random_ports(N_DRONES, child_rng(seed, "ports"))
    # Two drones fail mid-mission: one dies cleanly, one mid-broadcast.
    plan = FaultPlan(
        N_DRONES,
        crashes={
            7: CrashEvent(7, round=4),
            8: CrashEvent(8, round=9, receivers=frozenset({0, 2})),
        },
    )
    lo, hi = min(PREFERRED_ALTITUDE), max(PREFERRED_ALTITUDE)
    processes = {
        v: DACProcess(
            N_DRONES,
            MAX_CRASHES,
            PREFERRED_ALTITUDE[v],
            ports.self_port(v),
            epsilon=EPSILON_METERS,
            initial_range=hi - lo,
        )
        for v in plan.non_byzantine
    }
    report = run_consensus(
        processes,
        RandomLinkAdversary(link_quality),
        ports,
        epsilon=EPSILON_METERS,
        f=MAX_CRASHES,
        fault_plan=plan,
        max_rounds=3000,
        seed=seed,
    )
    return report.correct, report.rounds, report.output_spread


def main() -> None:
    print(f"Drone swarm: {N_DRONES} drones, 2 mid-mission failures,")
    print(f"agree on altitude to within {EPSILON_METERS} m.")
    print()
    print("link quality p   missions ok   rounds (mean +/- CI)   final spread (m)")
    print("-" * 72)
    for p in (0.2, 0.35, 0.5, 0.7, 0.9):
        rounds, spreads, successes = [], [], 0
        for trial in range(10):
            ok, n_rounds, spread = fly_mission(p, seed=hash((p, trial)) % 10_000)
            if ok:
                successes += 1
                rounds.append(float(n_rounds))
                spreads.append(spread)
        stats = summarize(rounds)
        mean_spread = sum(spreads) / len(spreads)
        print(
            f"      {p:.2f}          {successes:2d}/10"
            f"        {stats.mean:6.1f} [{stats.ci_low:5.1f}, {stats.ci_high:5.1f}]"
            f"        {mean_spread:.3f}"
        )
    print()
    print("Takeaway: the same algorithm rides out link quality from 0.9 down")
    print("to 0.2 -- rounds grow, but validity and agreement never break")
    print("(DAC's safety needs no stability assumption at all; stability")
    print("only buys termination).")


if __name__ == "__main__":
    main()
