#!/usr/bin/env python3
"""A gallery of the paper's impossibility results, run live.

Three negative results, each executed rather than proven:

1. Corollary 1  -- exact consensus is impossible with (1, n-2)-
   dynaDegree: a bounded model checker *exhaustively searches* the
   mobile-omission adversary's choices and prints a violating schedule
   for FloodMin.
2. Theorem 9    -- (T, floor(n/2)) is necessary for crash-tolerant
   approximate consensus: one degree less forces stall-or-disagree.
3. Theorem 10   -- (T, floor((n+3f)/2)) is necessary in the Byzantine
   case: overlap groups plus a two-faced Byzantine core split the
   network 0 vs 1.

Run:  python examples/impossibility_gallery.py
"""

from repro import (
    BoundedExplorer,
    FloodMinProcess,
    mobile_omission_choices,
    run_consensus,
)
from repro.workloads import (
    dbac_degree,
    theorem9_split_execution,
    theorem10_split_execution,
)


def corollary_1() -> None:
    print("=" * 68)
    print("Corollary 1: exact consensus vs (1, n-2)-dynaDegree, n = 3")
    print("=" * 68)
    n = 3
    explorer = BoundedExplorer(
        n,
        lambda node, x: FloodMinProcess(n, 0, x, node, num_rounds=2),
        inputs=[0.0, 1.0, 1.0],
        choices=mobile_omission_choices(n),
        horizon=2,
        cache_choices=True,  # deterministic generator: cache per depth
    )
    violation = explorer.search()
    assert violation is not None
    print(f"candidate : FloodMin (decide min after n-1 = 2 rounds)")
    print(f"verdict   : {violation.kind}, outputs {list(violation.outputs)}")
    print(f"explored  : {explorer.states_explored} memoized states")
    print("witness schedule (links the adversary kept):")
    for t, graph in enumerate(violation.schedule):
        dropped = [
            (u, v)
            for u in range(n)
            for v in range(n)
            if u != v and (u, v) not in graph
        ]
        print(f"  round {t}: dropped {dropped} (each node loses <= 1 link)")
    print()


def theorem_9(n: int = 8) -> None:
    print("=" * 68)
    print(f"Theorem 9: crash model, degree floor(n/2)-1, n = {n}")
    print("=" * 68)
    eager = run_consensus(**theorem9_split_execution(n=n, seed=1))
    print("eager algorithm (quorum n/2 -- the most that can terminate):")
    print(f"  outputs: { {k: round(v, 2) for k, v in sorted(eager.outputs.items())} }")
    print(f"  eps-agreement: {eager.epsilon_agreement}  <-- the halves split 0 vs 1")
    stalled = run_consensus(
        **theorem9_split_execution(n=n, seed=1, eager_quorum=False, max_rounds=200)
    )
    print("real DAC (quorum n/2 + 1):")
    print(f"  terminated: {stalled.terminated} after {stalled.rounds} rounds"
          "  <-- waits forever")
    print()


def theorem_10(f: int = 1) -> None:
    n = 5 * f + 1
    degree = dbac_degree(n, f)
    print("=" * 68)
    print(f"Theorem 10: Byzantine model, degree {degree - 1} = D-1, n = {n}, f = {f}")
    print("=" * 68)
    eager = run_consensus(**theorem10_split_execution(f=f, seed=2))
    print("two-faced Byzantine core, eager algorithm (quorum D):")
    print(f"  outputs: { {k: round(v, 2) for k, v in sorted(eager.outputs.items())} }")
    print(f"  eps-agreement: {eager.epsilon_agreement}"
          "  <-- A-listeners at 0, B-listeners at 1")
    print(f"  trace stability verified: (1, {degree - 1})-dynaDegree =",
          run_consensus(**theorem10_split_execution(f=f, seed=2)).dynadegree_verified)
    stalled = run_consensus(
        **theorem10_split_execution(f=f, seed=2, eager_quorum=False, max_rounds=200)
    )
    print("real DBAC (quorum D + 1):")
    print(f"  terminated: {stalled.terminated}  <-- exclusive listeners starve")
    print()


def main() -> None:
    corollary_1()
    theorem_9()
    theorem_10()
    print("Every lower bound in the paper, demonstrated by execution.")


if __name__ == "__main__":
    main()
