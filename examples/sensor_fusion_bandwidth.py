#!/usr/bin/env python3
"""Sensor-network temperature fusion: the bandwidth trade-off, live.

A field of 9 battery-powered temperature sensors fuses readings into a
common estimate over a lossy broadcast medium. Radio time is the
battery budget, so bits-per-round matters as much as rounds.

This example walks the Section VII piggybacking dial: each sensor can
relay up to k recently-overheard states alongside its own. More
relaying means fatter packets but fewer rounds in flaky conditions --
the open trade-off the paper sketches, measured here.

Run:  python examples/sensor_fusion_bandwidth.py
"""

from repro import PiggybackDACProcess, RandomLinkAdversary, run_consensus
from repro.analysis.statistics import summarize
from repro.net.ports import random_ports
from repro.sim.rng import child_rng

N_SENSORS = 9
EPSILON_DEGREES = 0.05
LINK_QUALITY = 0.3  # harsh: 70% of directed links fail each round

# Raw readings (degrees C): one sensor sits in the sun.
READINGS = [21.3, 21.7, 21.1, 21.9, 24.8, 21.5, 21.2, 21.6, 21.4]


def fuse(k: int, seed: int) -> tuple[int, float] | None:
    ports = random_ports(N_SENSORS, child_rng(seed, "ports"))
    lo, hi = min(READINGS), max(READINGS)
    processes = {
        v: PiggybackDACProcess(
            N_SENSORS,
            0,
            READINGS[v],
            ports.self_port(v),
            epsilon=EPSILON_DEGREES,
            initial_range=hi - lo,
            k=k,
        )
        for v in range(N_SENSORS)
    }
    report = run_consensus(
        processes,
        RandomLinkAdversary(LINK_QUALITY),
        ports,
        epsilon=EPSILON_DEGREES,
        stop_mode="oracle",
        max_rounds=4000,
        seed=seed,
    )
    if not report.terminated:
        return None
    return report.rounds, report.metrics.mean_bits_per_round


def main() -> None:
    print(f"{N_SENSORS} sensors, link quality p = {LINK_QUALITY}, "
          f"fuse to within {EPSILON_DEGREES} degrees.")
    print()
    print("  k    rounds (mean)   bits/round (mean)   bit-rounds product")
    print("  " + "-" * 60)
    for k in (0, 1, 2, 4, 8):
        rounds, bits = [], []
        for trial in range(12):
            outcome = fuse(k, seed=300 + trial)
            if outcome:
                rounds.append(float(outcome[0]))
                bits.append(outcome[1])
        r = summarize(rounds)
        b = summarize(bits)
        print(f"  {k}    {r.mean:8.1f}        {b.mean:10.0f}          "
              f"{r.mean * b.mean:12.0f}")
    print()
    print("Reading the table: k buys rounds (radio-on time) with bits")
    print("(packet size). k = 0 is the paper's DAC; the total-energy")
    print("column shows when relaying pays for itself -- and when the")
    print("already-optimal 1/2 phase rate means it cannot.")


if __name__ == "__main__":
    main()
