"""Setup shim: enables legacy editable installs (``--no-use-pep517``)
in offline environments without the ``wheel`` package. All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
