"""Setup shim: enables legacy editable installs (``--no-use-pep517``)
in offline environments without the ``wheel`` package.

The package has no hard third-party dependencies; numpy is an optional
extra that unlocks the vectorized batch-engine backend
(:mod:`repro.sim.batch`) -- without it the pure-Python fallback runs
the same contract (see docs/scaling.md).
"""

from setuptools import find_packages, setup

setup(
    name="repro-anonymous-consensus",
    version="1.0.0",
    description=(
        "Reproduction of 'Fault-tolerant Consensus in Anonymous Dynamic "
        "Network' (ICDCS 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[],
    extras_require={
        # Vectorized batched execution (repro.sim.batch numpy backend).
        "numpy": ["numpy>=1.24"],
        "test": ["pytest", "pytest-benchmark"],
    },
)
