"""X8 -- The multi-hop future work, probed: directed rings have full
information flow (dynaReach n-1) but starved direct degree (dynaDegree
1); anonymous quorum counting cannot use journeys, so DAC and even the
relaying variant stall while asymptotic averaging converges."""

from conftest import run_and_check

from repro.bench.experiments_ext import experiment_x8


def test_multihop_probe(benchmark):
    run_and_check(benchmark, experiment_x8)
