"""Shared benchmark utilities.

Each bench wraps one experiment from the registry (quick grid), times
it with pytest-benchmark, prints the reproduced table (visible with
``-s`` or in the captured output of a failure), and asserts the claim
reproduced (``result.passed``).
"""

from __future__ import annotations


def run_and_check(benchmark, experiment_fn):
    """Benchmark one experiment once and assert it reproduced the claim."""
    result = benchmark.pedantic(experiment_fn, args=(True,), rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.passed, result.render()
    return result
