"""E4 -- Theorems 4 and 7: DBAC correct at n = 5f+1 against equivocating, phase-lying, and pinned Byzantine strategies."""

from conftest import run_and_check

from repro.bench.experiments import experiment_e4


def test_dbac_correctness(benchmark):
    run_and_check(benchmark, experiment_e4)
