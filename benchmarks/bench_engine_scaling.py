"""S1 -- Engine throughput: micro-benchmarks of one synchronous round
at several network sizes, plus the scaling table. The simulator is the
substrate for every other experiment; this pins its cost model
(O(n^2) work per round on dense graphs).

Three execution modes are compared:

- **traced** -- ``record_trace=True``: every round materializes a
  ``RoundSnapshot`` (per-node state dicts) for the analysis layer;
- **fast path** -- ``record_trace=False`` and no observers: the engine
  skips snapshotting entirely and reuses its inbox buffers. Combined
  with the sender-major routing loop this runs untraced rounds 2-3.5x
  faster than the original per-edge implementation;
- **multi-worker** -- independent sweep trials fanned out over a
  process pool (``Sweep.run(workers=N)``), which scales with physical
  cores while producing records identical to the serial run.
"""

import time

import pytest
from conftest import run_and_check

from repro.adversary.base import StaticAdversary
from repro.bench.experiments import experiment_s1
from repro.bench.sweep import Sweep
from repro.core.dac import DACProcess
from repro.net.ports import identity_ports
from repro.sim.engine import Engine
from repro.sim.rng import spawn_inputs
from repro.workloads import run_dac_trial


def make_engine(n: int, record_trace: bool = False) -> Engine:
    ports = identity_ports(n)
    inputs = spawn_inputs(3, n)
    processes = {
        v: DACProcess(n, 0, inputs[v], v, epsilon=1e-12) for v in range(n)
    }
    return Engine(processes, StaticAdversary(), ports, record_trace=record_trace)


@pytest.mark.parametrize("n", [10, 20, 40, 80])
def test_round_cost(benchmark, n):
    """Cost of one dense round at size n on the fast path (untraced)."""
    engine = make_engine(n)
    benchmark(engine.run_round)


@pytest.mark.parametrize("n", [10, 40, 80])
def test_round_cost_traced(benchmark, n):
    """Cost of one dense round at size n with full snapshotting."""
    engine = make_engine(n, record_trace=True)
    benchmark(engine.run_round)


def _rounds_per_second(engine: Engine, rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        engine.run_round()
    return rounds / (time.perf_counter() - start)


def test_fast_path_vs_traced_throughput():
    """Report rounds/sec for traced vs fast-path execution.

    Purely a throughput report: wall-clock ratios are too noisy to
    assert on (load, frequency scaling), and the correctness claim --
    fast-path runs end in identical states -- is asserted
    deterministically in tests/test_parallel_determinism.py.
    """
    print()
    print("mode        n     rounds/s")
    for n in (10, 40, 80):
        rounds = 1500 if n <= 40 else 400
        traced = _rounds_per_second(make_engine(n, record_trace=True), rounds)
        fast = _rounds_per_second(make_engine(n, record_trace=False), rounds)
        print(f"traced    {n:3d}  {traced:10.0f}")
        print(f"fast      {n:3d}  {fast:10.0f}  ({fast / traced:.2f}x)")


def _sweeps_per_second(workers: int) -> tuple[float, list]:
    sweep = Sweep(grid={"n": [5, 7, 9], "window": [1, 2]}, repeats=4)
    start = time.perf_counter()
    records = sweep.run(run_dac_trial, workers=workers)
    elapsed = time.perf_counter() - start
    return len(records) / elapsed, records


def test_sweep_scaling_with_workers():
    """Report sweep trials/sec at 1, 2 and 4 workers.

    Speedup is near-linear up to the physical core count; on a
    single-core box the pool only adds overhead, so this test reports
    throughput and asserts *record identity* (the correctness claim)
    rather than a speedup factor.
    """
    print()
    print("workers  trials/s")
    baseline_records = None
    for workers in (1, 2, 4):
        rate, records = _sweeps_per_second(workers)
        print(f"{workers:7d}  {rate:8.1f}")
        if baseline_records is None:
            baseline_records = records
        else:
            assert records == baseline_records  # parallelism is a pure speed knob


def test_engine_scaling_table(benchmark):
    run_and_check(benchmark, experiment_s1)
