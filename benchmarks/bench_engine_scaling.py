"""S1/S3 -- Engine throughput: micro-benchmarks of one synchronous
round at several network sizes, plus the scaling tables. The simulator
is the substrate for every other experiment; this pins its cost model
(O(n^2) work per round on dense graphs).

Four execution modes are compared:

- **traced** -- ``record_trace=True``: every round materializes a
  ``RoundSnapshot`` (per-node state dicts) for the analysis layer;
- **fast path** -- ``record_trace=False`` and no observers: the engine
  skips snapshotting entirely and (since PR 5) runs the round as a
  port-major delivery sweep over cached per-graph routing plans --
  no inbox construction, no per-batch sort; ~1.5-1.8x over the PR 4
  sender-major loop at n = 33..65, which itself ran untraced rounds
  2-3.5x faster than the original per-edge implementation;
- **batched** -- B independent executions advanced in lock-step by
  ``repro.sim.batch.BatchEngine``, whose numpy kernel vectorizes the
  port-major delivery sweep across all B*n nodes. Aggregate rounds/s
  for fault-free DAC run well past 3x the serial fast path at n <= 64
  (measured 7-19x at B=32 on the reference box), while final states
  stay bit-identical;
- **multi-worker / batch x workers** -- independent trials (or whole
  batches) fanned out over a process pool (``Sweep.run(workers=N,
  batch=B)``), which scales with physical cores while producing
  records identical to the serial run: the two layers multiply.
"""

import time

import pytest
from conftest import run_and_check

from repro.adversary.base import StaticAdversary
from repro.bench.experiments import experiment_s1, experiment_s3
from repro.bench.sweep import Sweep
from repro.core.dac import DACProcess
from repro.net.ports import identity_ports
from repro.sim.batch import numpy_available, run_dac_batch
from repro.sim.engine import Engine
from repro.sim.parallel import run_trials, TrialSpec
from repro.sim.rng import spawn_inputs
from repro.workloads import run_dac_trial, run_dac_trial_batch


def make_engine(n: int, record_trace: bool = False) -> Engine:
    ports = identity_ports(n)
    inputs = spawn_inputs(3, n)
    processes = {
        v: DACProcess(n, 0, inputs[v], v, epsilon=1e-12) for v in range(n)
    }
    return Engine(processes, StaticAdversary(), ports, record_trace=record_trace)


@pytest.mark.parametrize("n", [10, 20, 40, 80])
def test_round_cost(benchmark, n):
    """Cost of one dense round at size n on the fast path (untraced)."""
    engine = make_engine(n)
    benchmark(engine.run_round)


@pytest.mark.parametrize("n", [10, 40, 80])
def test_round_cost_traced(benchmark, n):
    """Cost of one dense round at size n with full snapshotting."""
    engine = make_engine(n, record_trace=True)
    benchmark(engine.run_round)


def _rounds_per_second(engine: Engine, rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        engine.run_round()
    return rounds / (time.perf_counter() - start)


def test_fast_path_vs_traced_throughput():
    """Report rounds/sec for traced vs fast-path execution.

    Purely a throughput report: wall-clock ratios are too noisy to
    assert on (load, frequency scaling), and the correctness claim --
    fast-path runs end in identical states -- is asserted
    deterministically in tests/test_parallel_determinism.py.
    """
    print()
    print("mode        n     rounds/s")
    for n in (10, 40, 80):
        rounds = 1500 if n <= 40 else 400
        traced = _rounds_per_second(make_engine(n, record_trace=True), rounds)
        fast = _rounds_per_second(make_engine(n, record_trace=False), rounds)
        print(f"traced    {n:3d}  {traced:10.0f}")
        print(f"fast      {n:3d}  {fast:10.0f}  ({fast / traced:.2f}x)")


def _sweeps_per_second(workers: int) -> tuple[float, list]:
    sweep = Sweep(grid={"n": [5, 7, 9], "window": [1, 2]}, repeats=4)
    start = time.perf_counter()
    records = sweep.run(run_dac_trial, workers=workers)
    elapsed = time.perf_counter() - start
    return len(records) / elapsed, records


def test_sweep_scaling_with_workers():
    """Report sweep trials/sec at 1, 2 and 4 workers.

    Speedup is near-linear up to the physical core count; on a
    single-core box the pool only adds overhead, so this test reports
    throughput and asserts *record identity* (the correctness claim)
    rather than a speedup factor.
    """
    print()
    print("workers  trials/s")
    baseline_records = None
    for workers in (1, 2, 4):
        rate, records = _sweeps_per_second(workers)
        print(f"{workers:7d}  {rate:8.1f}")
        if baseline_records is None:
            baseline_records = records
        else:
            assert records == baseline_records  # parallelism is a pure speed knob


def test_batch_engine_scaling():
    """Report aggregate rounds/s: serial fast path vs batch vs batch x workers.

    Fault-free boundary-degree DAC (the ISSUE's acceptance scenario) at
    several sizes, B = 32 lanes. The serial leg is the PR 1 fast path
    (the batch engine's python backend *is* lock-step over fast-path
    engines); the batch leg is the vectorized numpy kernel; the last
    leg fans batches of 8 over 4 worker processes. Wall-clock ratios
    are reported, not asserted (load-sensitive); the correctness claim
    -- identical lane results -- is asserted here and, in full-state
    form, in tests/test_batch_determinism.py.
    """
    print()
    backend = "numpy" if numpy_available() else "python fallback (no numpy)"
    print(f"batch backend: {backend}")
    print("n    mode             agg rounds/s")
    lanes = 32
    seeds = list(range(lanes))
    for n in (16, 32, 64):
        serial_start = time.perf_counter()
        serial = run_dac_batch(n, 0, seeds, epsilon=1e-6, backend="python")
        serial_elapsed = time.perf_counter() - serial_start
        total_rounds = sum(lane.rounds for lane in serial)

        batch_start = time.perf_counter()
        batched = run_dac_batch(n, 0, seeds, epsilon=1e-6)
        batch_elapsed = time.perf_counter() - batch_start
        assert batched == serial  # batching is a pure speed knob

        specs = [TrialSpec((("n", n), ("f", 0), ("epsilon", 1e-6)), seed) for seed in seeds]
        fan_start = time.perf_counter()
        fanned = run_trials(
            run_dac_trial, specs, workers=4, batch=8, batch_fn=run_dac_trial_batch
        )
        fan_elapsed = time.perf_counter() - fan_start
        assert [r["rounds"] for r in fanned] == [lane.rounds for lane in serial]

        print(f"{n:3d}  serial fast path {total_rounds / serial_elapsed:12.0f}")
        print(
            f"{n:3d}  batch(B={lanes})     {total_rounds / batch_elapsed:12.0f}"
            f"  ({serial_elapsed / batch_elapsed:.2f}x)"
        )
        print(
            f"{n:3d}  batch x workers  {total_rounds / fan_elapsed:12.0f}"
            f"  ({serial_elapsed / fan_elapsed:.2f}x)"
        )


def test_batch_dbac_engine_scaling():
    """Report aggregate rounds/s for batched DBAC and mobile lanes, then
    write BENCH_batch_dbac.json so the perf trajectory is tracked.

    Boundary DBAC under the nearest-value enforcing adversary with
    equivocating Byzantine nodes -- the value-dependent selector and
    witness-counter/trimmed-update state the vectorized kernel had to
    learn (ISSUE acceptance: >= 3x aggregate rounds/s at n <= 64,
    B = 32 vs the serial fast path). Wall-clock ratios are reported,
    not asserted (load-sensitive); the correctness claim -- identical
    lane results -- is asserted inside every measure call and, in
    full-state form, in tests/test_batch_determinism.py.
    """
    import json

    from repro.bench.batch_smoke import (
        measure_compaction,
        measure_dbac,
        measure_mobile,
        run_smoke,
    )

    print()
    backend = "numpy" if numpy_available() else "python fallback (no numpy)"
    print(f"batch backend: {backend}")
    print("family   n    mode/f        agg rounds/s   speedup")
    legs = {}
    for n in (16, 32, 64):
        result = measure_dbac(n=n, lanes=32)
        legs[f"dbac_n{n}"] = result
        print(
            f"dbac   {n:3d}    f={result['f']:<10d}"
            f"{result['batched_rounds_per_s']:12.0f}   {result['speedup']:.2f}x"
        )
    for n in (16, 32):
        result = measure_mobile(n=n, lanes=32)
        legs[f"mobile_n{n}"] = result
        print(
            f"mobile {n:3d}    {result['mode']:<12s}"
            f"{result['batched_rounds_per_s']:12.0f}   {result['speedup']:.2f}x"
        )
    compaction = measure_compaction(n=16, seeds_total=64, width=8)
    legs["compaction_n16"] = compaction
    print(
        f"compaction n=16 width=8 seeds=64: "
        f"{compaction['compaction_speedup']:.2f}x vs chunked drain"
    )
    # run_smoke() is the single owner of the BENCH_batch_dbac.json
    # schema (same payload the CI smoke step uploads); the larger-n
    # legs measured above ride along under their own keys.
    payload = run_smoke()
    payload.update(legs)
    with open("BENCH_batch_dbac.json", "w") as handle:
        json.dump(payload, handle, indent=1)
    print("wrote BENCH_batch_dbac.json")


def test_delivery_sweep_throughput():
    """Report port-major-sweep vs legacy-loop rounds/s at the ISSUE's
    acceptance sizes, then write BENCH_delivery.json so the perf
    trajectory is tracked.

    Untraced enforced-rotate and staggered-crash rounds at n = 33 and
    65 (acceptance: >= 1.5x vs the PR 4 loop, which survives verbatim
    as the traced path / sweep reference). Wall-clock ratios are
    reported, not asserted (load-sensitive); the correctness claim --
    bit-identical states on both paths -- is asserted inside
    verify_contracts here and, in full-state form, by the shared
    differential harness (tests/helpers.py) and the fuzz grids.
    """
    import json

    from repro.bench.delivery_smoke import (
        measure_family,
        measure_plan_cache,
        run_smoke,
    )

    print()
    print("family    n    sweep r/s   legacy r/s   warm     cold-incl.")
    legs = {}
    for n, rounds in ((33, 2000), (65, 800)):
        for crash in (False, True):
            result = measure_family(n=n, rounds=rounds, crash=crash)
            legs[f"{'crash' if crash else 'enforced'}_n{n}"] = result
            print(
                f"{'crash' if crash else 'enforced':8s}{n:4d}"
                f"  {result['sweep_rounds_per_s']:10.0f}"
                f"  {result['legacy_rounds_per_s']:11.0f}"
                f"   {result['speedup']:.2f}x"
                f"   {result['speedup_cold']:.2f}x"
            )
    cache = measure_plan_cache(n=33, rounds=400)
    legs["plan_cache_n33"] = cache
    print(
        f"plan-cache n=33: {cache['stable_schedule_speedup']:.2f}x "
        f"replayed cycle vs novel graphs"
    )
    # run_smoke() is the single owner of the BENCH_delivery.json schema
    # (same payload the CI smoke step uploads); the acceptance-size
    # legs measured above ride along under their own keys.
    payload = run_smoke(n=17, rounds=1000)
    payload.update(legs)
    with open("BENCH_delivery.json", "w") as handle:
        json.dump(payload, handle, indent=1)
    print("wrote BENCH_delivery.json")


def test_engine_scaling_table(benchmark):
    run_and_check(benchmark, experiment_s1)


def test_batched_executor_table(benchmark):
    run_and_check(benchmark, experiment_s3)


def test_batched_dbac_table(benchmark):
    from repro.bench.experiments import experiment_s4

    run_and_check(benchmark, experiment_s4)


def test_enforced_adversary_throughput():
    """Report enforced-adversary rounds/s plus the graph-construction
    micro-comparison (Topology PR acceptance leg).

    Two scenarios: the memo-hit regime (``rotate``, where choose was
    already cached pre-Topology and the win is the cheaper construction
    plus adjacency-row routing) and the miss-every-round regime
    (``nearest``, DBAC's default, where every round used to pay a full
    dict-of-frozensets DirectedGraph build). Numbers are reported, not
    asserted (load-sensitive); the bit-identity claims live in
    tests/test_topology_equivalence.py.
    """
    from repro.bench.topology_smoke import measure_enforced

    print()
    print("selector  n    rounds/s   legacy/cold  legacy/hit (construction)")
    for selector in ("rotate", "nearest"):
        for n in (9, 33):
            rounds = 2000 if n <= 17 else 600
            result = measure_enforced(n=n, rounds=rounds, selector=selector)
            print(
                f"{selector:8s}{n:4d}  {result['rounds_per_s']:9.0f}"
                f"   {result['construction_speedup_cold']:9.2f}x"
                f"  {result['construction_speedup_hit']:9.2f}x"
            )


def test_lookahead_candidate_evaluation():
    """Report lookahead throughput and the overlay-vs-deepcopy ratios,
    then write BENCH_topology.json so the perf trajectory is tracked.

    The state-management ratio isolates exactly what the refactor
    removed (per-candidate ``copy.deepcopy`` of every process); the
    end-to-end ratio also pays the delivery work both implementations
    share. The no-deepcopy contract itself is asserted in
    tests/test_adversary_greedy.py and by the CI topology smoke.
    """
    import json

    from repro.bench.topology_smoke import measure_lookahead, run_smoke

    print()
    print("n   rounds/s  cand evals/s  end-to-end   state mgmt")
    lookahead = {}
    for n in (17, 33):
        result = measure_lookahead(n=n, rounds=120 if n <= 17 else 40)
        lookahead[n] = result
        print(
            f"{n:2d}  {result['rounds_per_s']:8.0f}  {result['candidate_evals_per_s']:12.0f}"
            f"  {result['candidate_eval_speedup']:9.2f}x"
            f"  {result['state_management_speedup']:9.2f}x"
        )
    # run_smoke() is the single owner of the BENCH_topology.json schema
    # (same payload the CI smoke step uploads); the larger-n lookahead
    # legs measured above ride along under their own keys.
    payload = run_smoke()
    payload["lookahead_n17"] = lookahead[17]
    payload["lookahead_n33"] = lookahead[33]
    base = payload["lookahead"]
    print(
        f" 9  {base['rounds_per_s']:8.0f}  {base['candidate_evals_per_s']:12.0f}"
        f"  {base['candidate_eval_speedup']:9.2f}x"
        f"  {base['state_management_speedup']:9.2f}x"
    )
    with open("BENCH_topology.json", "w") as handle:
        json.dump(payload, handle, indent=1)
    print("wrote BENCH_topology.json")
