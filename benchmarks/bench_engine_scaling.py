"""S1 -- Engine throughput: micro-benchmarks of one synchronous round
at several network sizes, plus the scaling table. The simulator is the
substrate for every other experiment; this pins its cost model
(O(n^2) work per round on dense graphs)."""

import pytest
from conftest import run_and_check

from repro.adversary.base import StaticAdversary
from repro.bench.experiments import experiment_s1
from repro.core.dac import DACProcess
from repro.net.ports import identity_ports
from repro.sim.engine import Engine
from repro.sim.rng import spawn_inputs


def make_engine(n: int) -> Engine:
    ports = identity_ports(n)
    inputs = spawn_inputs(3, n)
    processes = {
        v: DACProcess(n, 0, inputs[v], v, epsilon=1e-12) for v in range(n)
    }
    return Engine(processes, StaticAdversary(), ports, record_trace=False)


@pytest.mark.parametrize("n", [10, 20, 40, 80])
def test_round_cost(benchmark, n):
    """Cost of one dense round at size n."""
    engine = make_engine(n)
    benchmark(engine.run_round)


def test_engine_scaling_table(benchmark):
    run_and_check(benchmark, experiment_s1)
