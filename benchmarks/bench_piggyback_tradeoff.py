"""X2 -- Section VII extension: piggybacking k old states -- bandwidth cost vs wall-clock convergence."""

from conftest import run_and_check

from repro.bench.experiments import experiment_x2


def test_piggyback_tradeoff(benchmark):
    run_and_check(benchmark, experiment_x2)
