"""X5 -- Section II-B: (T, D)-dynaDegree is incomparable with rooted-
spanning-tree and T-interval-connectivity stability. Rooted/connected
forever can still starve DAC; asymptotic averaging rides them all."""

from conftest import run_and_check

from repro.bench.experiments_ext import experiment_x5


def test_stability_comparison(benchmark):
    run_and_check(benchmark, experiment_x5)
