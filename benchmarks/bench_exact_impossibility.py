"""I1 -- Corollary 1: exact consensus breaks under (1, n-2) mobile omission -- exhaustive model check at n=3 plus the constructive block-min adversary."""

from conftest import run_and_check

from repro.bench.experiments import experiment_i1


def test_exact_impossibility(benchmark):
    run_and_check(benchmark, experiment_i1)
