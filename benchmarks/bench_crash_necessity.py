"""I2/I3 -- Theorem 9: degree floor(n-over-2)-1 forces stall-or-disagree; n = 2f is beaten by isolate-then-connect regardless of eventual stability."""

from conftest import run_and_check

from repro.bench.experiments import experiment_i2


def test_crash_necessity(benchmark):
    run_and_check(benchmark, experiment_i2)
