"""E5 -- Theorem 7 / Equation 6: measured DBAC rate and phase count vs the (exponentially conservative) 1 - 2^-n bound."""

from conftest import run_and_check

from repro.bench.experiments import experiment_e5


def test_dbac_convergence(benchmark):
    run_and_check(benchmark, experiment_e5)
