"""I4 -- Theorem 10: overlap groups + two-faced Byzantine core split the network 0 vs 1 at degree D-1; plain DBAC stalls."""

from conftest import run_and_check

from repro.bench.experiments import experiment_i4


def test_byzantine_necessity(benchmark):
    run_and_check(benchmark, experiment_i4)
