"""E1 -- Theorem 3: DAC termination/validity/eps-agreement at the exact feasibility boundary (n = 2f+1 crashes, D = floor(n-over-2), worst-case enforcing adversaries)."""

from conftest import run_and_check

from repro.bench.experiments import experiment_e1


def test_dac_correctness(benchmark):
    run_and_check(benchmark, experiment_e1)
