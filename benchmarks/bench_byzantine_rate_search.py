"""X7 -- Open question probe: adversarial search over selectors x
Byzantine strategies for the slowest DBAC contraction; the worst seen
stays ~1/2, far below the proven 1 - 2^-n bound."""

from conftest import run_and_check

from repro.bench.experiments_ext import experiment_x7


def test_byzantine_rate_search(benchmark):
    run_and_check(benchmark, experiment_x7)
