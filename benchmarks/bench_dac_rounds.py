"""E3 -- Equation 2 / Section VII: measured rounds-to-output vs the worst-case T * p_end bound across window sizes and epsilons."""

from conftest import run_and_check

from repro.bench.experiments import experiment_e3


def test_dac_rounds(benchmark):
    run_and_check(benchmark, experiment_e3)
