"""F1 -- Figure 1: the example adversary satisfies (2,1)- but not
(1,1)-dynaDegree. Regenerates the paper's motivating example as a
stability profile over window sizes."""

from conftest import run_and_check

from repro.bench.experiments import experiment_f1


def test_fig1_dynadegree(benchmark):
    run_and_check(benchmark, experiment_f1)
