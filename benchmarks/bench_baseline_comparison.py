"""X4 -- Optimality: DAC on a hostile dynamic network matches the reliable-channel classic's per-phase rate (1/2)."""

from conftest import run_and_check

from repro.bench.experiments import experiment_x4


def test_baseline_comparison(benchmark):
    run_and_check(benchmark, experiment_x4)
