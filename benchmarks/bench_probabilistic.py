"""X1 -- Section VII extension: expected rounds to eps-agreement under the probabilistic (i.i.d. link) message adversary."""

from conftest import run_and_check

from repro.bench.experiments import experiment_x1


def test_probabilistic(benchmark):
    run_and_check(benchmark, experiment_x1)
