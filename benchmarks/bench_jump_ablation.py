"""X3 -- Design ablation: DAC's jump rule is what survives phase skew; without it slow nodes stall forever."""

from conftest import run_and_check

from repro.bench.experiments import experiment_x3


def test_jump_ablation(benchmark):
    run_and_check(benchmark, experiment_x3)
