"""X6 -- Section VII: a binomial / coupon-collector model of the
probabilistic message adversary, validated against measured rounds."""

from conftest import run_and_check

from repro.bench.experiments_ext import experiment_x6


def test_analytic_model(benchmark):
    run_and_check(benchmark, experiment_x6)
