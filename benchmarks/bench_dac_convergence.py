"""E2 -- Remark 1: DAC's per-phase contraction of range(V(p)) never exceeds 1/2, and the nearest-value adversary makes the bound tight."""

from conftest import run_and_check

from repro.bench.experiments import experiment_e2


def test_dac_convergence(benchmark):
    run_and_check(benchmark, experiment_e2)
